//! Window assembly and evaluation: the single consumer of shard output.
//!
//! The collector receives per-node window segments from every shard over
//! one bounded channel, assembles them into service-wide segment vectors
//! (series order, independent of shard count and scheduling), and runs the
//! shared windowed pipeline — [`sd_core::calibrate_window`] followed by
//! [`sd_core::evaluate_window_artifacts`] on the engine's group-slot
//! machinery — the moment a window is complete. Windows are evaluated
//! strictly in stream order, which per-shard FIFO delivery makes safe:
//! a window can only be complete once every earlier window is.

use crate::ServeConfig;
use parking_lot::Mutex;
use sd_cleaning::CompositeStrategy;
use sd_core::{
    calibrate_window, evaluate_window_artifacts, FrameworkError, ThreadPoolExecutor, WindowOutcome,
    WindowScreen,
};
use sd_data::{NodeId, TimeSeries};
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, Sender};

/// What shards send the collector.
pub(crate) enum CollectorMsg {
    /// One node's retained `[base, end)` segment for one window.
    Segment {
        /// Window index.
        window: usize,
        /// Series index of the node in service order.
        series: usize,
        /// Whether the segment covers the window's full `[start, end)`
        /// span. At least one sealed segment is the collector's proof
        /// that the stream's horizon admits this window at all.
        sealed: bool,
        /// The materialized rows.
        segment: TimeSeries,
    },
    /// A shard finished flushing after `Close`.
    ShardDone {
        /// Which shard.
        shard: usize,
        /// Rows the shard ingested.
        rows: u64,
        /// Highest ring occupancy the shard ever saw.
        high_water: usize,
        /// `(series, final stream length)` of every owned node.
        final_lens: Vec<(usize, usize)>,
    },
    /// A shard hit a structured error and stopped.
    ShardError {
        /// Which shard.
        shard: usize,
        /// The error it observed.
        error: FrameworkError,
    },
}

/// One completed window, published to the service as soon as it is
/// evaluated — the live view of the stream's trajectory.
#[derive(Debug, Clone)]
pub struct WindowUpdate {
    /// Window index, in stream order.
    pub window_index: usize,
    /// What the calibration screen did per series.
    pub screen: WindowScreen,
    /// One outcome per strategy, in strategy order.
    pub outcomes: Vec<WindowOutcome>,
}

/// Everything the collector accumulated by end of stream.
pub(crate) struct CollectorOutput {
    pub outcomes: Vec<WindowOutcome>,
    pub screens: Vec<WindowScreen>,
    pub rows: u64,
    pub high_water: usize,
}

/// One window's partially assembled segments.
struct Assembly {
    slots: Vec<Option<TimeSeries>>,
    filled: usize,
    sealed: bool,
}

impl Assembly {
    fn new(num_series: usize) -> Self {
        Assembly {
            slots: (0..num_series).map(|_| None).collect(),
            filled: 0,
            sealed: false,
        }
    }
}

/// The collector thread body.
pub(crate) struct Collector {
    config: ServeConfig,
    nodes: Vec<NodeId>,
    neighbors: Vec<Vec<(usize, f64)>>,
    strategies: Vec<CompositeStrategy>,
    executor: ThreadPoolExecutor,
    updates: Sender<WindowUpdate>,
    pending: BTreeMap<usize, Assembly>,
    next_eval: usize,
    outcomes: Vec<WindowOutcome>,
    screens: Vec<WindowScreen>,
}

impl Collector {
    pub(crate) fn new(
        config: ServeConfig,
        nodes: Vec<NodeId>,
        neighbors: Vec<Vec<(usize, f64)>>,
        strategies: Vec<CompositeStrategy>,
        updates: Sender<WindowUpdate>,
    ) -> Self {
        let executor = ThreadPoolExecutor::new(config.windowed.threads);
        Collector {
            config,
            nodes,
            neighbors,
            strategies,
            executor,
            updates,
            pending: BTreeMap::new(),
            next_eval: 0,
            outcomes: Vec::new(),
            screens: Vec::new(),
        }
    }

    /// Drains shard messages until every shard reports done, evaluating
    /// windows eagerly and in order; then settles clipped/ragged tail
    /// windows from the reported stream lengths.
    pub(crate) fn run(
        mut self,
        inbox: &Receiver<CollectorMsg>,
    ) -> Result<CollectorOutput, FrameworkError> {
        let num_series = self.nodes.len();
        let shards = self.config.shards;
        let mut done = 0usize;
        let mut closed = vec![false; shards];
        let mut rows = 0u64;
        let mut high_water = 0usize;
        let mut final_lens: Vec<Option<usize>> = vec![None; num_series];
        while done < shards {
            let Ok(msg) = inbox.recv() else {
                return Err(FrameworkError::Internal(
                    "a shard terminated before reporting its close".into(),
                ));
            };
            match msg {
                CollectorMsg::Segment {
                    window,
                    series,
                    sealed,
                    segment,
                } => {
                    self.accept(window, series, sealed, segment)?;
                    self.evaluate_ready()?;
                }
                CollectorMsg::ShardDone {
                    shard,
                    rows: shard_rows,
                    high_water: shard_high,
                    final_lens: lens,
                } => {
                    if closed[shard] {
                        return Err(FrameworkError::Internal(format!(
                            "shard {shard} reported its close twice"
                        )));
                    }
                    closed[shard] = true;
                    done += 1;
                    rows += shard_rows;
                    high_water = high_water.max(shard_high);
                    for (series, len) in lens {
                        final_lens[series] = Some(len);
                    }
                }
                CollectorMsg::ShardError { shard, error } => {
                    return Err(FrameworkError::ShardFailed {
                        shard,
                        detail: error.to_string(),
                    })
                }
            }
        }
        self.settle_tail(&final_lens)?;
        Ok(CollectorOutput {
            outcomes: self.outcomes,
            screens: self.screens,
            rows,
            high_water,
        })
    }

    fn accept(
        &mut self,
        window: usize,
        series: usize,
        sealed: bool,
        segment: TimeSeries,
    ) -> Result<(), FrameworkError> {
        if window < self.next_eval {
            return Err(FrameworkError::Internal(format!(
                "segment for already-evaluated window {window} (series {series})"
            )));
        }
        let num_series = self.nodes.len();
        let assembly = self
            .pending
            .entry(window)
            .or_insert_with(|| Assembly::new(num_series));
        if assembly.slots[series].is_some() {
            return Err(FrameworkError::Internal(format!(
                "duplicate segment for window {window}, series {series}"
            )));
        }
        assembly.slots[series] = Some(segment);
        assembly.filled += 1;
        assembly.sealed |= sealed;
        Ok(())
    }

    /// Evaluates consecutive complete windows starting at `next_eval`.
    /// Per-shard FIFO delivery guarantees window `w` cannot be complete
    /// while `w - 1` is not, so this never leaves a gap.
    fn evaluate_ready(&mut self) -> Result<(), FrameworkError> {
        while let Some(assembly) = self.pending.get(&self.next_eval) {
            if assembly.filled < self.nodes.len() || !assembly.sealed {
                break;
            }
            let w = self.next_eval;
            if let Some(assembly) = self.pending.remove(&w) {
                self.evaluate(w, assembly.slots)?;
            }
            self.next_eval += 1;
        }
        Ok(())
    }

    /// After every shard closed: fill in empty segments for series whose
    /// stream ended before a window, evaluate the remaining real windows,
    /// and drop speculative tails beyond the stream's horizon (their
    /// windows do not exist in the batch replay either).
    fn settle_tail(&mut self, final_lens: &[Option<usize>]) -> Result<(), FrameworkError> {
        let mut lens = Vec::with_capacity(final_lens.len());
        for (series, len) in final_lens.iter().enumerate() {
            match len {
                Some(len) => lens.push(*len),
                None => {
                    return Err(FrameworkError::Internal(format!(
                        "no shard reported series {series} at close"
                    )))
                }
            }
        }
        let horizon = lens.iter().copied().max().unwrap_or(0);
        let (window, stride) = (self.config.windowed.window, self.config.windowed.stride);
        let num_windows = if horizon < window {
            0
        } else {
            (horizon - window) / stride + 1
        };
        for w in self.next_eval..num_windows {
            let mut assembly = self
                .pending
                .remove(&w)
                .unwrap_or_else(|| Assembly::new(self.nodes.len()));
            for (series, slot) in assembly.slots.iter_mut().enumerate() {
                if slot.is_none() {
                    if lens[series] > w * stride {
                        return Err(FrameworkError::Internal(format!(
                            "series {series} never delivered its segment for window {w}"
                        )));
                    }
                    // The series ended before this window started: its
                    // window slice is empty in the batch replay too.
                    *slot = Some(TimeSeries::new(
                        self.nodes[series],
                        self.config.attributes.len(),
                        0,
                    ));
                }
            }
            self.evaluate(w, assembly.slots)?;
        }
        self.next_eval = num_windows;
        // Anything still pending reaches past the horizon: those windows
        // do not exist (`num_windows` excludes them) — discard.
        self.pending.clear();
        Ok(())
    }

    fn evaluate(&mut self, w: usize, slots: Vec<Option<TimeSeries>>) -> Result<(), FrameworkError> {
        let mut segments = Vec::with_capacity(slots.len());
        for (series, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(segment) => segments.push(segment),
                None => {
                    return Err(FrameworkError::Internal(format!(
                        "window {w} evaluated with a hole at series {series}"
                    )))
                }
            }
        }
        let (artifacts, screen) = calibrate_window(
            &self.config.windowed,
            &self.config.attributes,
            w,
            &segments,
            &self.neighbors,
        )?;
        let outcomes = evaluate_window_artifacts(
            &self.config.windowed,
            &self.strategies,
            &self.executor,
            artifacts,
        )?;
        // Live subscribers are optional; a dropped update receiver must
        // not fail the stream.
        let _ = self.updates.send(WindowUpdate {
            window_index: w,
            screen: screen.clone(),
            outcomes: outcomes.clone(),
        });
        self.screens.push(screen);
        self.outcomes.extend(outcomes);
        Ok(())
    }
}

/// A handle pairing the live update receiver with interior mutability so
/// the service can expose `try_next_window(&self)` without exclusive
/// borrows.
pub(crate) struct UpdateFeed {
    receiver: Mutex<Receiver<WindowUpdate>>,
}

impl UpdateFeed {
    pub(crate) fn new(receiver: Receiver<WindowUpdate>) -> Self {
        UpdateFeed {
            receiver: Mutex::new(receiver),
        }
    }

    /// Non-blocking: the next completed window, if one is queued.
    pub(crate) fn try_next(&self) -> Option<WindowUpdate> {
        self.receiver.lock().try_recv().ok()
    }

    /// Blocking: waits for the next completed window; `None` once the
    /// collector has hung up (end of stream or failure).
    pub(crate) fn next(&self) -> Option<WindowUpdate> {
        self.receiver.lock().recv().ok()
    }
}
