//! Window assembly: the single consumer of shard output.
//!
//! The collector receives per-node window segments from every shard over
//! one bounded channel and assembles them into service-wide segment
//! vectors (series order, independent of shard count and scheduling).
//! The moment a window is complete it is *dispatched* — in strict stream
//! order, which per-shard FIFO delivery makes safe: a window can only be
//! complete once every earlier window is — to the evaluator pool
//! ([`crate::evaluator`]), which calibrates and scores it off the
//! assembly thread and republishes results in window order. Splitting
//! assembly from evaluation lets ingestion and kernel scoring overlap:
//! the collector is back at its inbox while earlier windows are still
//! being scored.

use crate::evaluator::{DepthGauge, EvalJob};
use crate::ServeConfig;
use parking_lot::Mutex;
use sd_core::{FrameworkError, WindowOutcome, WindowScreen};
use sd_data::{NodeId, TimeSeries};
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// What shards send the collector.
pub(crate) enum CollectorMsg {
    /// One node's retained `[base, end)` segment for one window.
    Segment {
        /// Window index.
        window: usize,
        /// Series index of the node in service order.
        series: usize,
        /// Whether the segment covers the window's full `[start, end)`
        /// span. At least one sealed segment is the collector's proof
        /// that the stream's horizon admits this window at all.
        sealed: bool,
        /// The materialized rows.
        segment: TimeSeries,
    },
    /// A shard finished flushing after `Close`.
    ShardDone {
        /// Which shard.
        shard: usize,
        /// Rows the shard ingested.
        rows: u64,
        /// Highest ring occupancy the shard ever saw.
        high_water: usize,
        /// `(series, final stream length)` of every owned node.
        final_lens: Vec<(usize, usize)>,
    },
    /// A shard hit a structured error and stopped.
    ShardError {
        /// Which shard.
        shard: usize,
        /// The error it observed.
        error: FrameworkError,
    },
}

/// One completed window, published by the reorder stage the moment it is
/// next in stream order — the live view of the stream's trajectory.
#[derive(Debug, Clone)]
pub struct WindowUpdate {
    /// Window index, in stream order.
    pub window_index: usize,
    /// What the calibration screen did per series.
    pub screen: WindowScreen,
    /// One outcome per strategy, in strategy order.
    pub outcomes: Vec<WindowOutcome>,
}

/// What the assembly thread accumulated by end of stream. Outcomes and
/// screens live with the reorder stage now; the collector only knows how
/// many windows it dispatched — the completeness bar the reorder stage's
/// published count is checked against.
pub(crate) struct AssemblerOutput {
    pub rows: u64,
    pub high_water: usize,
    pub windows_dispatched: usize,
}

/// One window's partially assembled segments.
struct Assembly {
    slots: Vec<Option<TimeSeries>>,
    filled: usize,
    sealed: bool,
}

impl Assembly {
    fn new(num_series: usize) -> Self {
        Assembly {
            slots: (0..num_series).map(|_| None).collect(),
            filled: 0,
            sealed: false,
        }
    }
}

/// The collector (assembly) thread body.
pub(crate) struct Collector {
    config: ServeConfig,
    nodes: Vec<NodeId>,
    dispatch: SyncSender<EvalJob>,
    depth: Arc<DepthGauge>,
    pending: BTreeMap<usize, Assembly>,
    next_dispatch: usize,
}

impl Collector {
    pub(crate) fn new(
        config: ServeConfig,
        nodes: Vec<NodeId>,
        dispatch: SyncSender<EvalJob>,
        depth: Arc<DepthGauge>,
    ) -> Self {
        Collector {
            config,
            nodes,
            dispatch,
            depth,
            pending: BTreeMap::new(),
            next_dispatch: 0,
        }
    }

    /// Drains shard messages until every shard reports done, dispatching
    /// windows eagerly and in order; then settles clipped/ragged tail
    /// windows from the reported stream lengths. Dropping `self` on
    /// return closes the dispatch channel, which is how the evaluator
    /// workers learn the stream is over.
    pub(crate) fn run(
        mut self,
        inbox: &Receiver<CollectorMsg>,
    ) -> Result<AssemblerOutput, FrameworkError> {
        let num_series = self.nodes.len();
        let shards = self.config.shards;
        let mut done = 0usize;
        let mut closed = vec![false; shards];
        let mut rows = 0u64;
        let mut high_water = 0usize;
        let mut final_lens: Vec<Option<usize>> = vec![None; num_series];
        while done < shards {
            let Ok(msg) = inbox.recv() else {
                return Err(FrameworkError::Internal(
                    "a shard terminated before reporting its close".into(),
                ));
            };
            match msg {
                CollectorMsg::Segment {
                    window,
                    series,
                    sealed,
                    segment,
                } => {
                    self.accept(window, series, sealed, segment)?;
                    self.dispatch_ready()?;
                }
                CollectorMsg::ShardDone {
                    shard,
                    rows: shard_rows,
                    high_water: shard_high,
                    final_lens: lens,
                } => {
                    if closed[shard] {
                        return Err(FrameworkError::Internal(format!(
                            "shard {shard} reported its close twice"
                        )));
                    }
                    closed[shard] = true;
                    done += 1;
                    rows += shard_rows;
                    high_water = high_water.max(shard_high);
                    for (series, len) in lens {
                        final_lens[series] = Some(len);
                    }
                }
                CollectorMsg::ShardError { shard, error } => {
                    return Err(FrameworkError::ShardFailed {
                        shard,
                        detail: error.to_string(),
                    })
                }
            }
        }
        self.settle_tail(&final_lens)?;
        Ok(AssemblerOutput {
            rows,
            high_water,
            windows_dispatched: self.next_dispatch,
        })
    }

    fn accept(
        &mut self,
        window: usize,
        series: usize,
        sealed: bool,
        segment: TimeSeries,
    ) -> Result<(), FrameworkError> {
        if window < self.next_dispatch {
            return Err(FrameworkError::Internal(format!(
                "segment for already-dispatched window {window} (series {series})"
            )));
        }
        let num_series = self.nodes.len();
        let assembly = self
            .pending
            .entry(window)
            .or_insert_with(|| Assembly::new(num_series));
        if assembly.slots[series].is_some() {
            return Err(FrameworkError::Internal(format!(
                "duplicate segment for window {window}, series {series}"
            )));
        }
        assembly.slots[series] = Some(segment);
        assembly.filled += 1;
        assembly.sealed |= sealed;
        Ok(())
    }

    /// Dispatches consecutive complete windows starting at
    /// `next_dispatch`. Per-shard FIFO delivery guarantees window `w`
    /// cannot be complete while `w - 1` is not, so this never leaves a
    /// gap.
    fn dispatch_ready(&mut self) -> Result<(), FrameworkError> {
        while let Some(assembly) = self.pending.get(&self.next_dispatch) {
            if assembly.filled < self.nodes.len() || !assembly.sealed {
                break;
            }
            let w = self.next_dispatch;
            if let Some(assembly) = self.pending.remove(&w) {
                self.dispatch(w, assembly.slots)?;
            }
            self.next_dispatch += 1;
        }
        Ok(())
    }

    /// After every shard closed: fill in empty segments for series whose
    /// stream ended before a window, dispatch the remaining real windows,
    /// and drop speculative tails beyond the stream's horizon (their
    /// windows do not exist in the batch replay either).
    fn settle_tail(&mut self, final_lens: &[Option<usize>]) -> Result<(), FrameworkError> {
        let mut lens = Vec::with_capacity(final_lens.len());
        for (series, len) in final_lens.iter().enumerate() {
            match len {
                Some(len) => lens.push(*len),
                None => {
                    return Err(FrameworkError::Internal(format!(
                        "no shard reported series {series} at close"
                    )))
                }
            }
        }
        let horizon = lens.iter().copied().max().unwrap_or(0);
        let (window, stride) = (self.config.windowed.window, self.config.windowed.stride);
        let num_windows = if horizon < window {
            0
        } else {
            (horizon - window) / stride + 1
        };
        for w in self.next_dispatch..num_windows {
            let mut assembly = self
                .pending
                .remove(&w)
                .unwrap_or_else(|| Assembly::new(self.nodes.len()));
            for (series, slot) in assembly.slots.iter_mut().enumerate() {
                if slot.is_none() {
                    if lens[series] > w * stride {
                        return Err(FrameworkError::Internal(format!(
                            "series {series} never delivered its segment for window {w}"
                        )));
                    }
                    // The series ended before this window started: its
                    // window slice is empty in the batch replay too.
                    *slot = Some(TimeSeries::new(
                        self.nodes[series],
                        self.config.attributes.len(),
                        0,
                    ));
                }
            }
            self.dispatch(w, assembly.slots)?;
        }
        self.next_dispatch = num_windows;
        // Anything still pending reaches past the horizon: those windows
        // do not exist (`num_windows` excludes them) — discard.
        self.pending.clear();
        Ok(())
    }

    /// Hands one assembled window to the evaluator pool; the bounded
    /// dispatch channel is the pipeline's backpressure.
    fn dispatch(&mut self, w: usize, slots: Vec<Option<TimeSeries>>) -> Result<(), FrameworkError> {
        let mut segments = Vec::with_capacity(slots.len());
        for (series, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(segment) => segments.push(segment),
                None => {
                    return Err(FrameworkError::Internal(format!(
                        "window {w} dispatched with a hole at series {series}"
                    )))
                }
            }
        }
        self.depth.on_dispatch();
        if self.dispatch.send(EvalJob::new(w, segments)).is_err() {
            // Every worker is gone (the pool only disconnects after a
            // failure); `finish` will attribute the root cause.
            return Err(FrameworkError::Internal(format!(
                "the evaluator pool disconnected before window {w}"
            )));
        }
        Ok(())
    }
}

/// A handle pairing the live update receiver with interior mutability so
/// the service can expose `try_next_window(&self)` without exclusive
/// borrows.
pub(crate) struct UpdateFeed {
    receiver: Mutex<Receiver<WindowUpdate>>,
}

impl UpdateFeed {
    pub(crate) fn new(receiver: Receiver<WindowUpdate>) -> Self {
        UpdateFeed {
            receiver: Mutex::new(receiver),
        }
    }

    /// Non-blocking: the next completed window, if one is queued.
    pub(crate) fn try_next(&self) -> Option<WindowUpdate> {
        self.receiver.lock().try_recv().ok()
    }

    /// Blocking: waits for the next completed window; `None` once the
    /// reorder stage has hung up (end of stream or failure).
    pub(crate) fn next(&self) -> Option<WindowUpdate> {
        self.receiver.lock().recv().ok()
    }
}
