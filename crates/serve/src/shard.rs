//! Shard workers: per-node ring-buffer state behind bounded channels.
//!
//! Every thread of the streaming service is spawned from this module —
//! the sd-lint D004 rule approves exactly this file (next to
//! `sd_core::parallel_map`) as a thread spawn site, so any new
//! concurrency in the serving layer has to pass review here.
//!
//! A shard owns the [`NodeState`] rings of the nodes routed to it and
//! does no cleaning of its own: when a node's stream reaches the end of
//! the shard's pending window, the shard materializes that node's
//! retained `[base, end)` segment and forwards it to the collector over a
//! bounded channel. Backpressure is therefore end-to-end — a slow
//! collector fills the segment channel, which stalls the shard, which
//! fills the ingestion channel, which blocks the producer.

use crate::collector::CollectorMsg;
use sd_core::{FrameworkError, WindowedConfig};
use sd_data::{ArrivalRow, NodeId, NodeState};
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

/// What producers send to a shard.
pub(crate) enum ShardMsg {
    /// One KPI row for a node this shard owns.
    Row(ArrivalRow),
    /// End of stream: flush remaining (clipped) windows and report.
    Close,
}

/// One node owned by a shard.
struct OwnedNode {
    /// Index of the node's series in the service-wide series order.
    series: usize,
    /// The node's bounded ring of retained rows.
    state: NodeState,
    /// Next window this node has not yet emitted a segment for.
    pending: usize,
}

/// A shard worker: consumes [`ShardMsg`]s, maintains per-node rings, and
/// emits window segments to the collector.
pub(crate) struct ShardWorker {
    shard: usize,
    window: usize,
    stride: usize,
    owned: Vec<OwnedNode>,
    index_of: BTreeMap<NodeId, usize>,
    emit: SyncSender<CollectorMsg>,
    rows: u64,
}

impl ShardWorker {
    pub(crate) fn new(
        shard: usize,
        config: &WindowedConfig,
        ring_capacity: usize,
        num_attributes: usize,
        nodes: Vec<(usize, NodeId)>,
        emit: SyncSender<CollectorMsg>,
    ) -> Self {
        let mut owned = Vec::with_capacity(nodes.len());
        let mut index_of = BTreeMap::new();
        for (series, node) in nodes {
            index_of.insert(node, owned.len());
            owned.push(OwnedNode {
                series,
                state: NodeState::new(node, num_attributes, ring_capacity),
                pending: 0,
            });
        }
        ShardWorker {
            shard,
            window: config.window,
            stride: config.stride,
            owned,
            index_of,
            emit,
            rows: 0,
        }
    }

    fn bounds(&self, w: usize) -> (usize, usize, usize) {
        let start = w * self.stride;
        let end = start + self.window;
        (start, end, start.saturating_sub(self.window))
    }

    /// Ingests one row; emits every window segment it completes.
    fn on_row(&mut self, row: ArrivalRow) -> Result<(), FrameworkError> {
        let idx = *self.index_of.get(&row.node).ok_or_else(|| {
            FrameworkError::InvalidConfig(format!(
                "row for {} arrived at shard {}, which does not own it",
                row.node, self.shard
            ))
        })?;
        let owned = &mut self.owned[idx];
        owned
            .state
            .push_at(row.t, &row.values)
            .map_err(|e| FrameworkError::InvalidConfig(format!("row for {}: {e}", row.node)))?;
        self.rows += 1;
        loop {
            let (_, end, base) = self.bounds(self.owned[idx].pending);
            if self.owned[idx].state.next_t() < end {
                break;
            }
            let owned = &mut self.owned[idx];
            let segment = owned
                .state
                .materialize(base, end)
                .map_err(|e| FrameworkError::Internal(format!("shard segment: {e}")))?;
            let msg = CollectorMsg::Segment {
                window: owned.pending,
                series: owned.series,
                sealed: true,
                segment,
            };
            if self.emit.send(msg).is_err() {
                // Collector gone; the service will surface its error.
                return Err(FrameworkError::Internal(
                    "collector hung up mid-stream".into(),
                ));
            }
            owned.pending += 1;
            let next_base = (owned.pending * self.stride).saturating_sub(self.window);
            owned.state.evict_below(next_base);
        }
        Ok(())
    }

    /// End of stream: emit the clipped tail segment of every still-pending
    /// window that overlaps a node's data, then report totals.
    fn close(mut self) {
        let mut high_water = 0;
        let mut final_lens = Vec::with_capacity(self.owned.len());
        for owned in &mut self.owned {
            let len = owned.state.next_t();
            loop {
                let start = owned.pending * self.stride;
                if start >= len {
                    break;
                }
                let end = start + self.window;
                let base = start.saturating_sub(self.window);
                // Streaming emission already covered windows with
                // `end <= len`; what is left here is a clipped tail, never
                // sealed (the collector only counts a window as real once
                // some node reached its full end).
                match owned.state.materialize(base, end) {
                    Ok(segment) => {
                        let msg = CollectorMsg::Segment {
                            window: owned.pending,
                            series: owned.series,
                            sealed: end <= len,
                            segment,
                        };
                        if self.emit.send(msg).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = self.emit.send(CollectorMsg::ShardError {
                            shard: self.shard,
                            error: FrameworkError::Internal(format!("close flush: {e}")),
                        });
                        return;
                    }
                }
                owned.pending += 1;
            }
            high_water = high_water.max(owned.state.high_water());
            final_lens.push((owned.series, len));
        }
        let _ = self.emit.send(CollectorMsg::ShardDone {
            shard: self.shard,
            rows: self.rows,
            high_water,
            final_lens,
        });
    }

    /// The shard thread body: drain messages until close or failure.
    fn run(mut self, inbox: &Receiver<ShardMsg>) {
        for msg in inbox.iter() {
            match msg {
                ShardMsg::Row(row) => {
                    if let Err(error) = self.on_row(row) {
                        let _ = self.emit.send(CollectorMsg::ShardError {
                            shard: self.shard,
                            error,
                        });
                        // Dropping the receiver unblocks any producer
                        // waiting on a full channel with a send error.
                        return;
                    }
                }
                ShardMsg::Close => {
                    self.close();
                    return;
                }
            }
        }
    }
}

/// Spawns one OS thread per shard worker. The worker owns its receiver;
/// the handles are joined by [`crate::StreamingService::finish`].
pub(crate) fn spawn_shard(worker: ShardWorker, inbox: Receiver<ShardMsg>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("sd-serve-shard-{}", worker.shard))
        .spawn(move || worker.run(&inbox))
        // Thread spawning fails only when the OS is out of resources, at
        // which point the service cannot exist; this is the one approved
        // abort point of the serving layer.
        // sd-lint: allow(P001, OS thread exhaustion has no recovery path)
        .expect("spawning a shard thread")
}

/// Spawns the collector thread (assembly + evaluation), returning its
/// join handle; the collector's result carries the assembled report.
pub(crate) fn spawn_collector<T: Send + 'static>(
    body: impl FnOnce() -> T + Send + 'static,
) -> JoinHandle<T> {
    std::thread::Builder::new()
        .name("sd-serve-collector".into())
        .spawn(body)
        // sd-lint: allow(P001, OS thread exhaustion has no recovery path)
        .expect("spawning the collector thread")
}
