//! Service configuration: the windowed-pipeline geometry plus the
//! sharding/backpressure knobs that only exist in the streaming layer.

use sd_core::{FrameworkError, Result, WindowedConfig};
use sd_data::NodeId;

/// Configuration of a [`crate::StreamingService`].
///
/// Wraps the batch [`WindowedConfig`] — window geometry, screen, pooling,
/// metrics, seed — so a stream and its batch replay are parameterized
/// identically, and adds the serving knobs: shard count and per-channel
/// capacity (the backpressure bound).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The windowed-pipeline parameters shared with
    /// [`sd_core::WindowedExperiment`].
    pub windowed: WindowedConfig,
    /// Number of ingestion shards (threads). Rows route to shards by a
    /// hash of their node's `(rnc, tower)`, so all sectors of a tower
    /// land on one shard.
    pub shards: usize,
    /// Bounded capacity of every ingestion and shard→collector channel,
    /// in messages. A full channel blocks the sender — the service never
    /// drops rows or buffers without bound.
    pub channel_capacity: usize,
    /// Attribute names of the arriving rows, in row order.
    pub attributes: Vec<String>,
    /// Size of the evaluator-worker pool: how many
    /// sealed windows may be calibrated and scored concurrently. The
    /// reorder stage publishes strictly in window order, so every pool
    /// size produces a bit-identical [`crate::StreamReport`]; larger
    /// pools only overlap more evaluation with ingestion.
    pub evaluators: usize,
    /// Test hook: `(seed, max_us)` deterministic per-window sleep before
    /// evaluating, to scramble completion order in pipelining tests.
    pub(crate) eval_jitter: Option<(u64, u64)>,
    /// Test hook: induce a panic in whichever worker picks up this
    /// window, to exercise the fault path.
    pub(crate) eval_panic_at: Option<usize>,
}

impl ServeConfig {
    /// Creates a service configuration with 4 shards and channel capacity
    /// 256.
    pub fn new(windowed: WindowedConfig, attributes: Vec<String>) -> Self {
        ServeConfig {
            windowed,
            shards: 4,
            channel_capacity: 256,
            attributes,
            evaluators: 1,
            eval_jitter: None,
            eval_panic_at: None,
        }
    }

    /// Sets the shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the bounded channel capacity.
    #[must_use]
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity;
        self
    }

    /// Sets the evaluator-pool size.
    #[must_use]
    pub fn with_evaluators(mut self, evaluators: usize) -> Self {
        self.evaluators = evaluators;
        self
    }

    /// Test hook: sleep each worker a deterministic, per-window number of
    /// microseconds (at most `max_us`, derived from `seed ^ window`)
    /// before evaluating, so pipelining tests can scramble completion
    /// order without touching results.
    #[must_use]
    pub fn with_evaluation_jitter(mut self, seed: u64, max_us: u64) -> Self {
        self.eval_jitter = Some((seed, max_us));
        self
    }

    /// Test hook: panic the worker that picks up window `window`, so
    /// fault tests can prove a dead evaluator surfaces as
    /// [`sd_core::FrameworkError::EvaluatorFailed`] instead of a hang.
    #[must_use]
    pub fn with_evaluator_panic_at(mut self, window: usize) -> Self {
        self.eval_panic_at = Some(window);
        self
    }

    /// Ring capacity per node implied by the window geometry: the screen
    /// reaches one window length behind the window start, so `2 · window`
    /// rows always suffice (see [`sd_data::NodeState`]'s retention
    /// contract).
    pub fn ring_capacity(&self) -> usize {
        2 * self.windowed.window
    }

    pub(crate) fn validate(&self, nodes: &[NodeId]) -> Result<()> {
        if self.windowed.window == 0 || self.windowed.stride == 0 {
            return Err(FrameworkError::InvalidConfig(
                "window and stride must be positive".into(),
            ));
        }
        if self.windowed.metrics.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "at least one distortion metric is required".into(),
            ));
        }
        if self.shards == 0 {
            return Err(FrameworkError::InvalidConfig(
                "a streaming service needs at least one shard".into(),
            ));
        }
        if self.channel_capacity == 0 {
            return Err(FrameworkError::InvalidConfig(
                "bounded channels need a positive capacity".into(),
            ));
        }
        if self.evaluators == 0 {
            return Err(FrameworkError::InvalidConfig(
                "the evaluator pool needs at least one worker".into(),
            ));
        }
        if self.attributes.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "rows must carry at least one attribute".into(),
            ));
        }
        if nodes.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "a streaming service needs at least one node".into(),
            ));
        }
        for (i, node) in nodes.iter().enumerate() {
            if nodes[..i].contains(node) {
                return Err(FrameworkError::InvalidConfig(format!(
                    "node {node} is declared twice; one series per sector"
                )));
            }
        }
        Ok(())
    }
}

/// Routes a node to its shard: a splitmix64 finalizer over the node's
/// `(rnc, tower)`, so collocated sectors (one tower) always share a shard
/// and the assignment is a pure function of the address — independent of
/// arrival order, channel capacity, and shard-thread scheduling.
pub fn shard_of(node: NodeId, shards: usize) -> usize {
    let mut x = (u64::from(node.rnc) << 32) | u64::from(node.tower);
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_tower_granular() {
        for rnc in 0..8 {
            for tower in 0..8 {
                let home = shard_of(NodeId::new(rnc, tower, 0), 4);
                for sector in 1..3 {
                    assert_eq!(shard_of(NodeId::new(rnc, tower, sector), 4), home);
                }
            }
        }
    }

    #[test]
    fn shard_routing_spreads_towers() {
        let mut hit = [false; 8];
        for rnc in 0..16 {
            for tower in 0..16 {
                hit[shard_of(NodeId::new(rnc, tower, 0), 8)] = true;
            }
        }
        assert!(hit.iter().all(|&h| h), "256 towers must reach all 8 shards");
    }

    #[test]
    fn one_shard_maps_everything_to_zero() {
        assert_eq!(shard_of(NodeId::new(7, 3, 1), 1), 0);
    }
}
