//! # sd-serve — sharded streaming ingestion for the §3.3 online pipeline
//!
//! The batch windowed mode ([`sd_core::WindowedExperiment`]) replays a
//! finished dataset window by window. This crate serves the same
//! pipeline online: KPI rows arrive one at a time on bounded channels,
//! are routed to shards by a hash of their tower address, accumulate in
//! per-node ring buffers ([`sd_data::NodeState`]) of fixed capacity, and
//! every completed window is screened, cleaned, and kernel-scored the
//! moment its last row lands — with memory bounded by
//! `nodes · 2 · window` retained rows plus the channel capacities, no
//! matter how long the stream runs.
//!
//! Equivalence to the batch path is structural, not approximate: both
//! paths call the same [`sd_core::calibrate_window`] and
//! [`sd_core::evaluate_window_artifacts`] on segments materialized from
//! the same [`sd_data::NodeState`] rings, with the same per-window RNG
//! seeding — so per-window outcomes are bit-identical for every shard
//! count, channel capacity, and arrival interleaving
//! (`tests/streaming_equivalence.rs` holds the proof obligations).
//!
//! Evaluation is pipelined: the collector only *assembles* windows and
//! dispatches each completed one to a bounded pool of evaluator workers
//! ([`ServeConfig::evaluators`]); a reorder stage publishes results
//! strictly in window order, so the report — and the live update feed —
//! stay bit-identical at every pool size while kernel scoring overlaps
//! ingestion.
//!
//! ## Layout
//!
//! - [`ServeConfig`] / [`shard_of`] — geometry, serving knobs, routing.
//! - `shard` (private) — shard worker threads owning the rings.
//! - `collector` (private) — window assembly and in-order dispatch;
//!   exposes [`WindowUpdate`], the live per-window feed.
//! - `evaluator` (private) — the evaluator-worker pool and the reorder
//!   stage; exposes [`WindowLag`], the per-window lag observability.
//! - [`StreamingService`] — the producer-facing handle:
//!   [`launch`](StreamingService::launch) →
//!   [`ingest`](StreamingService::ingest) →
//!   [`finish`](StreamingService::finish) → [`StreamReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod config;
mod evaluator;
mod service;
mod shard;

pub use collector::WindowUpdate;
pub use config::{shard_of, ServeConfig};
pub use evaluator::WindowLag;
pub use service::{ServeStats, StreamReport, StreamingService};
