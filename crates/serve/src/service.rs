//! The streaming service: producer-facing ingestion, live window updates,
//! and the final report.

use crate::collector::{AssemblerOutput, Collector, UpdateFeed, WindowUpdate};
use crate::evaluator::{spawn_evaluator_pool, DepthGauge, ReorderOutput, WindowLag};
use crate::shard::{spawn_collector, spawn_shard, ShardMsg, ShardWorker};
use crate::{shard_of, ServeConfig};
use sd_cleaning::CompositeStrategy;
use sd_core::{resolve_neighbor_views, FrameworkError, Result, WindowOutcome, WindowScreen};
use sd_data::{ArrivalRow, NodeId};
use std::sync::mpsc::{channel, sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Aggregate statistics of one served stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Number of ingestion shards.
    pub shards: usize,
    /// Size of the evaluator-worker pool.
    pub evaluators: usize,
    /// Rows ingested across all shards.
    pub rows_ingested: u64,
    /// Highest per-node ring occupancy any shard ever observed. Bounded
    /// memory means this never exceeds `ring_capacity`.
    pub ring_high_water: usize,
    /// The configured per-node ring capacity
    /// ([`ServeConfig::ring_capacity`]).
    pub ring_capacity: usize,
    /// Windows calibrated and evaluated.
    pub windows_evaluated: usize,
    /// High-water mark of windows dispatched to the evaluator pool but
    /// not yet published by the reorder stage — how deep the pipeline
    /// actually ran. Never exceeds `2 · evaluators + 1` (queue capacity
    /// plus in-flight evaluations plus one reorder slot).
    pub max_pending_windows: usize,
    /// Per-window evaluation lag — queue wait and evaluate time — in
    /// window order. Timings are observability, not results: they vary
    /// run to run while every outcome stays bit-identical.
    pub window_lags: Vec<WindowLag>,
}

impl ServeStats {
    /// `(mean queue-wait µs, mean evaluate µs)` across all windows;
    /// zeros for an empty stream.
    pub fn mean_lag_us(&self) -> (f64, f64) {
        if self.window_lags.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.window_lags.len() as f64;
        let wait: u64 = self.window_lags.iter().map(|l| l.queue_wait_us).sum();
        let eval: u64 = self.window_lags.iter().map(|l| l.evaluate_us).sum();
        (wait as f64 / n, eval as f64 / n)
    }
}

/// Everything a finished stream produced — the streaming analogue of
/// [`sd_core::WindowedResult`], plus serving statistics.
#[derive(Debug, Clone)]
pub struct StreamReport {
    outcomes: Vec<WindowOutcome>,
    screens: Vec<WindowScreen>,
    metrics: Vec<&'static str>,
    stats: ServeStats,
}

impl StreamReport {
    /// Every `(window, strategy)` outcome, in `(window, strategy)` order —
    /// bit-identical to [`sd_core::WindowedResult::outcomes`] on the same
    /// stream.
    pub fn outcomes(&self) -> &[WindowOutcome] {
        &self.outcomes
    }

    /// Per-window calibration screens, in stream order.
    pub fn screens(&self) -> &[WindowScreen] {
        &self.screens
    }

    /// Number of windows evaluated.
    pub fn num_windows(&self) -> usize {
        self.screens.len()
    }

    /// The scored metric names, in configuration order.
    pub fn metrics(&self) -> &[&'static str] {
        &self.metrics
    }

    /// Serving statistics (rows, ring occupancy, shard count, lags).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// One strategy's per-window `(window_index, improvement, distortion)`
    /// trajectory under the primary metric, in stream order.
    pub fn trajectory(&self, strategy_index: usize) -> Vec<(usize, f64, f64)> {
        self.outcomes
            .iter()
            .filter(|o| o.strategy_index == strategy_index)
            .map(|o| (o.window_index, o.improvement, o.distortion))
            .collect()
    }
}

/// A live sharded ingestion service running the §3.3 windowed cleaning
/// pipeline.
///
/// Rows stream in via [`StreamingService::ingest`] (any interleaving
/// across nodes; time-ordered per node), shards maintain bounded
/// per-node ring buffers, completed windows are dispatched to a bounded
/// pool of evaluator workers, and a reorder stage publishes every
/// calibrated, cleaned, kernel-scored window strictly in stream order —
/// emitting [`WindowUpdate`]s live and a [`StreamReport`] at
/// [`StreamingService::finish`] whose outcomes are bit-identical to
/// running [`sd_core::WindowedExperiment`] over the materialized stream,
/// at every pool size.
///
/// ```
/// use sd_cleaning::paper_strategy;
/// use sd_core::WindowedConfig;
/// use sd_data::ArrivalRow;
/// use sd_netsim::{generate, stream_rows, NetsimConfig};
/// use sd_serve::{ServeConfig, StreamingService};
///
/// let config = NetsimConfig::small(7);
/// let data = generate(&config).dataset;
/// let nodes = data.series().iter().map(|s| s.node()).collect();
/// let attributes = data.attributes().iter().map(|a| a.name.clone()).collect();
/// let serve = ServeConfig::new(WindowedConfig::paper_default(30, 30, 7), attributes)
///     .with_shards(2)
///     .with_evaluators(2);
/// let service = StreamingService::launch(serve, nodes, vec![paper_strategy(5)]).unwrap();
/// for row in stream_rows(&data) {
///     service.ingest(row).unwrap();
/// }
/// let report = service.finish().unwrap();
/// assert_eq!(report.num_windows(), 2);
/// assert_eq!(report.stats().rows_ingested, 6000);
/// ```
pub struct StreamingService {
    senders: Vec<SyncSender<ShardMsg>>,
    shard_handles: Vec<JoinHandle<()>>,
    collector: JoinHandle<std::result::Result<AssemblerOutput, FrameworkError>>,
    evaluator_handles: Vec<JoinHandle<()>>,
    reorder: JoinHandle<ReorderOutput>,
    depth: Arc<DepthGauge>,
    updates: UpdateFeed,
    metrics: Vec<&'static str>,
    shards: usize,
    evaluators: usize,
    ring_capacity: usize,
}

impl StreamingService {
    /// Validates the configuration and spawns the shard, collector,
    /// evaluator, and reorder threads. `nodes[i]` is the node whose rows
    /// form series `i` of the stream — series order, like the batch
    /// dataset's, fixes outcome order regardless of sharding or pool
    /// size.
    pub fn launch(
        config: ServeConfig,
        nodes: Vec<NodeId>,
        strategies: Vec<CompositeStrategy>,
    ) -> Result<Self> {
        config.validate(&nodes)?;
        if strategies.is_empty() {
            return Err(FrameworkError::InvalidConfig(
                "a streaming service needs at least one strategy".into(),
            ));
        }
        let neighbors = resolve_neighbor_views(
            config.windowed.pooling,
            config.windowed.topology.as_ref(),
            &nodes,
        )?;
        let metrics: Vec<&'static str> = config
            .windowed
            .metrics
            .iter()
            .map(sd_core::DistortionMetric::name)
            .collect();
        let shards = config.shards;
        let evaluators = config.evaluators;
        let ring_capacity = config.ring_capacity();
        let num_attributes = config.attributes.len();

        // Shard → collector: one bounded channel shared by every shard
        // (per-shard FIFO is what the collector's in-order dispatch
        // relies on). The original sender is dropped below so the channel
        // disconnects as soon as the last shard exits.
        let (emit, emit_rx) = sync_channel(config.channel_capacity);
        let (updates_tx, updates_rx) = channel();

        let mut per_shard: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); shards];
        for (series, &node) in nodes.iter().enumerate() {
            per_shard[shard_of(node, shards)].push((series, node));
        }

        // Evaluation stage first: the collector needs its dispatch
        // sender. Dropping the Collector at end of stream closes that
        // sender, which drains and retires the pool.
        let pool = spawn_evaluator_pool(&config, strategies, neighbors, updates_tx);
        let depth = Arc::clone(&pool.depth);

        let collector = Collector::new(config.clone(), nodes, pool.dispatch, Arc::clone(&depth));
        let collector = spawn_collector(move || collector.run(&emit_rx));

        let mut senders = Vec::with_capacity(shards);
        let mut shard_handles = Vec::with_capacity(shards);
        for (shard, owned) in per_shard.into_iter().enumerate() {
            let worker = ShardWorker::new(
                shard,
                &config.windowed,
                ring_capacity,
                num_attributes,
                owned,
                emit.clone(),
            );
            let (tx, rx) = sync_channel(config.channel_capacity);
            senders.push(tx);
            shard_handles.push(spawn_shard(worker, rx));
        }
        drop(emit);

        Ok(StreamingService {
            senders,
            shard_handles,
            collector,
            evaluator_handles: pool.workers,
            reorder: pool.reorder,
            depth,
            updates: UpdateFeed::new(updates_rx),
            metrics,
            shards,
            evaluators,
            ring_capacity,
        })
    }

    /// Number of ingestion shards.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// Routes one row to its shard, blocking while that shard's bounded
    /// channel is full (backpressure — rows are never dropped). Fails
    /// with [`FrameworkError::ShardFailed`] if the shard has terminated.
    pub fn ingest(&self, row: ArrivalRow) -> Result<()> {
        let shard = shard_of(row.node, self.shards);
        self.senders[shard]
            .send(ShardMsg::Row(row))
            .map_err(|_| FrameworkError::ShardFailed {
                shard,
                detail: "its ingest channel is closed (worker terminated)".into(),
            })
    }

    /// Non-blocking poll for the next completed window, in stream order.
    pub fn try_next_window(&self) -> Option<WindowUpdate> {
        self.updates.try_next()
    }

    /// Blocks until the next window completes; `None` once the reorder
    /// stage has exited. Only call when enough rows are in flight to
    /// complete a window — the stream cannot finish a window it was
    /// never fed.
    pub fn next_window(&self) -> Option<WindowUpdate> {
        self.updates.next()
    }

    /// Ends the stream: flushes clipped tail windows, joins every thread,
    /// and returns the report. A panicked shard, evaluator, or collector
    /// surfaces as a structured [`FrameworkError`] — the service never
    /// wedges. Attribution order: a panicked shard first (it starves
    /// everything downstream), then the reorder stage's in-order
    /// evaluation error, then a panicked evaluator, then the collector's
    /// own error.
    pub fn finish(self) -> Result<StreamReport> {
        for sender in &self.senders {
            // A dead shard already surfaced (or will) via join below.
            let _ = sender.send(ShardMsg::Close);
        }
        drop(self.senders);
        let mut panicked_shard = None;
        for (shard, handle) in self.shard_handles.into_iter().enumerate() {
            if handle.join().is_err() && panicked_shard.is_none() {
                panicked_shard = Some(shard);
            }
        }
        // The collector exits once every shard closed (or errored); its
        // drop closes the dispatch channel, so the workers drain and
        // exit, the results channel disconnects, and the reorder stage
        // returns. Join order below mirrors that shutdown wave — no join
        // can block on a thread joined later.
        let collected = match self.collector.join() {
            Ok(result) => result,
            Err(_) => Err(FrameworkError::Internal(
                "the collector thread panicked".into(),
            )),
        };
        let mut panicked_evaluator = None;
        for (evaluator, handle) in self.evaluator_handles.into_iter().enumerate() {
            if handle.join().is_err() && panicked_evaluator.is_none() {
                panicked_evaluator = Some(evaluator);
            }
        }
        let reorder = match self.reorder.join() {
            Ok(output) => output,
            Err(_) => {
                return Err(FrameworkError::Internal(
                    "the reorder thread panicked".into(),
                ))
            }
        };
        if let Some(shard) = panicked_shard {
            return Err(FrameworkError::ShardFailed {
                shard,
                detail: "its worker thread panicked".into(),
            });
        }
        if let Some(error) = reorder.error {
            return Err(error);
        }
        if let Some(evaluator) = panicked_evaluator {
            return Err(FrameworkError::EvaluatorFailed {
                evaluator,
                detail: "its worker thread panicked".into(),
            });
        }
        let output = collected?;
        if reorder.published < output.windows_dispatched {
            return Err(FrameworkError::Internal(format!(
                "{} of {} dispatched windows were published",
                reorder.published, output.windows_dispatched
            )));
        }
        Ok(StreamReport {
            outcomes: reorder.outcomes,
            screens: reorder.screens,
            metrics: self.metrics,
            stats: ServeStats {
                shards: self.shards,
                evaluators: self.evaluators,
                rows_ingested: output.rows,
                ring_high_water: output.high_water,
                ring_capacity: self.ring_capacity,
                windows_evaluated: reorder.published,
                max_pending_windows: self.depth.max_pending(),
                window_lags: reorder.window_lags,
            },
        })
    }
}
