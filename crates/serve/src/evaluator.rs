//! The pipelined window-evaluation stage: a bounded pool of evaluator
//! workers plus a reorder stage that restores stream order.
//!
//! The collector ([`crate::collector`]) assembles sealed windows and
//! *dispatches* them here instead of scoring them inline, so ingestion,
//! assembly, and kernel scoring overlap. The stage is three pieces wired
//! by two channels:
//!
//! * a bounded **dispatch** channel (capacity = pool size) carrying
//!   [`EvalJob`]s from the collector — backpressure, never an unbounded
//!   backlog of materialized segments;
//! * `evaluators` **worker** threads, each pulling the next job from a
//!   shared receiver and running the same shared windowed pipeline the
//!   serial collector ran ([`sd_core::calibrate_window`] +
//!   [`sd_core::evaluate_window_artifacts`]);
//! * one **reorder** thread that buffers out-of-order results and
//!   publishes [`WindowUpdate`]s **strictly in window order**.
//!
//! # Why every pool size is bit-identical
//!
//! A window's evaluation is a pure function of `(windowed config, window
//! index, segments)`: every RNG stream is derived from `(seed, window,
//! strategy)`, never from scheduling, and windows share no mutable state.
//! Pooling therefore only permutes *completion* order; the reorder stage
//! restores *publication* order, so the assembled [`crate::StreamReport`]
//! — and every live [`WindowUpdate`] — is bit-identical to pool size 1,
//! which in turn equals the batch replay.
//!
//! # Failure containment
//!
//! A worker that hits a structured error sends it as its window's result;
//! the reorder stage stops publishing when that window becomes next in
//! line and returns the error. A worker that *panics* simply never
//! delivers its window: the results channel disconnects once the stream
//! closes and the surviving workers drain, the reorder stage returns with
//! a gap, and [`crate::StreamingService::finish`] — which joins every
//! worker — surfaces [`sd_core::FrameworkError::EvaluatorFailed`] instead
//! of hanging.
//!
//! Like [`crate::shard`], this module is one of sd-lint's approved
//! thread-spawn sites (D004); all evaluator-stage threads are spawned
//! here. Wall-clock reads (D003 allows below) feed only the
//! [`WindowLag`] observability counters, never result values.

use crate::collector::WindowUpdate;
use crate::ServeConfig;
use parking_lot::Mutex;
use sd_cleaning::CompositeStrategy;
use sd_core::{
    calibrate_window, evaluate_window_artifacts, FrameworkError, ThreadPoolExecutor, WindowOutcome,
    WindowScreen,
};
use sd_data::TimeSeries;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant; // sd-lint: allow(D003, queue-wait observability only; never feeds result values)

/// One assembled window handed from the collector to the pool.
pub(crate) struct EvalJob {
    /// Window index, in stream order.
    pub(crate) window: usize,
    /// One materialized segment per series, in series order.
    pub(crate) segments: Vec<TimeSeries>,
    /// When the collector dispatched the job (queue-wait measurement).
    dispatched_at: Instant, // sd-lint: allow(D003, queue-wait observability only; never feeds result values)
}

impl EvalJob {
    pub(crate) fn new(window: usize, segments: Vec<TimeSeries>) -> Self {
        EvalJob {
            window,
            segments,
            dispatched_at: Instant::now(), // sd-lint: allow(D003, queue-wait observability only; never feeds result values)
        }
    }
}

/// One worker's verdict on one window, sent to the reorder stage.
struct EvalResult {
    window: usize,
    queue_wait_us: u64,
    evaluate_us: u64,
    result: Result<(WindowScreen, Vec<WindowOutcome>), FrameworkError>,
}

/// Evaluation-lag observability for one published window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowLag {
    /// Window index, in stream order.
    pub window_index: usize,
    /// Microseconds the assembled window waited in the dispatch queue
    /// before a worker picked it up.
    pub queue_wait_us: u64,
    /// Microseconds the worker spent calibrating and scoring it.
    pub evaluate_us: u64,
}

/// Pending-window depth gauge shared by the collector (dispatch side) and
/// the reorder stage (publish side): `dispatched − published` windows are
/// in flight, and the high-water mark of that depth is the
/// `max_pending_windows` statistic.
pub(crate) struct DepthGauge {
    dispatched: AtomicUsize,
    published: AtomicUsize,
    max_pending: AtomicUsize,
}

impl DepthGauge {
    fn new() -> Self {
        DepthGauge {
            dispatched: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
            max_pending: AtomicUsize::new(0),
        }
    }

    /// Called by the collector right before sending a job.
    pub(crate) fn on_dispatch(&self) {
        let dispatched = self.dispatched.fetch_add(1, Ordering::AcqRel) + 1;
        let published = self.published.load(Ordering::Acquire);
        let depth = dispatched.saturating_sub(published);
        self.max_pending.fetch_max(depth, Ordering::AcqRel);
    }

    fn on_publish(&self) {
        self.published.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn max_pending(&self) -> usize {
        self.max_pending.load(Ordering::Acquire)
    }
}

/// Everything the reorder stage accumulated. `error` carries the first
/// in-order evaluation failure (if any); a missing window (worker death)
/// shows up as `published` falling short of the collector's dispatch
/// count instead.
pub(crate) struct ReorderOutput {
    pub(crate) outcomes: Vec<WindowOutcome>,
    pub(crate) screens: Vec<WindowScreen>,
    pub(crate) window_lags: Vec<WindowLag>,
    pub(crate) published: usize,
    pub(crate) error: Option<FrameworkError>,
}

/// The spawned evaluation stage: the collector's dispatch sender, the
/// worker handles, and the reorder handle, joined by
/// [`crate::StreamingService::finish`].
pub(crate) struct EvaluatorPool {
    pub(crate) dispatch: SyncSender<EvalJob>,
    pub(crate) workers: Vec<JoinHandle<()>>,
    pub(crate) reorder: JoinHandle<ReorderOutput>,
    pub(crate) depth: Arc<DepthGauge>,
}

/// What every worker shares: the windowed pipeline inputs plus the
/// config's fault/latency injection hooks.
struct EvalContext {
    config: ServeConfig,
    strategies: Vec<CompositeStrategy>,
    neighbors: Vec<Vec<(usize, f64)>>,
    executor: ThreadPoolExecutor,
}

/// Spawns the evaluator workers and the reorder thread; the returned
/// pool's `dispatch` sender is handed to the collector.
pub(crate) fn spawn_evaluator_pool(
    config: &ServeConfig,
    strategies: Vec<CompositeStrategy>,
    neighbors: Vec<Vec<(usize, f64)>>,
    updates: Sender<WindowUpdate>,
) -> EvaluatorPool {
    let evaluators = config.evaluators.max(1);
    let (dispatch, jobs) = sync_channel::<EvalJob>(evaluators);
    let (results_tx, results_rx) = channel::<EvalResult>();
    let depth = Arc::new(DepthGauge::new());

    let ctx = Arc::new(EvalContext {
        config: config.clone(),
        strategies,
        neighbors,
        executor: ThreadPoolExecutor::new(config.windowed.threads),
    });
    let jobs = Arc::new(Mutex::new(jobs));

    let mut workers = Vec::with_capacity(evaluators);
    for worker in 0..evaluators {
        let ctx = Arc::clone(&ctx);
        let jobs = Arc::clone(&jobs);
        let results = results_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("sd-serve-eval-{worker}"))
            .spawn(move || run_worker(&ctx, &jobs, &results))
            // Thread spawning fails only when the OS is out of resources,
            // at which point the service cannot exist; like the shard and
            // collector spawns, this is an approved abort point.
            // sd-lint: allow(P001, OS thread exhaustion has no recovery path)
            .expect("spawning an evaluator thread");
        workers.push(handle);
    }
    // The workers hold the only result senders: the channel disconnects —
    // and the reorder stage returns — exactly when the last worker exits.
    drop(results_tx);

    let reorder_depth = Arc::clone(&depth);
    let reorder = std::thread::Builder::new()
        .name("sd-serve-reorder".into())
        .spawn(move || run_reorder(&results_rx, &updates, &reorder_depth))
        // sd-lint: allow(P001, OS thread exhaustion has no recovery path)
        .expect("spawning the reorder thread");

    EvaluatorPool {
        dispatch,
        workers,
        reorder,
        depth,
    }
}

/// Worker body: pull the next job, evaluate it through the shared
/// windowed pipeline, send the result. Exits when the dispatch channel
/// disconnects (stream closed and drained) or the reorder stage is gone.
fn run_worker(ctx: &EvalContext, jobs: &Mutex<Receiver<EvalJob>>, results: &Sender<EvalResult>) {
    loop {
        // Holding the lock across `recv` is equivalent to queueing on the
        // receiver itself: exactly one idle worker blocks on the channel,
        // the rest block on the lock, and disconnection wakes them all.
        let job = jobs.lock().recv();
        let Ok(job) = job else { return };
        let picked = Instant::now(); // sd-lint: allow(D003, queue-wait observability only; never feeds result values)
        let queue_wait_us = micros_between(job.dispatched_at, picked);
        apply_test_hooks(ctx, job.window);
        let window = job.window;
        let result = evaluate_one(ctx, window, &job.segments);
        let evaluate_us = micros_between(picked, Instant::now()); // sd-lint: allow(D003, evaluate-time observability only; never feeds result values)
        let sent = results.send(EvalResult {
            window,
            queue_wait_us,
            evaluate_us,
            result,
        });
        if sent.is_err() {
            // The reorder stage returned early (a prior window failed);
            // remaining jobs are moot.
            return;
        }
    }
}

/// One window through the shared windowed pipeline — the exact calls the
/// serial collector used to make inline, so results are bit-identical.
fn evaluate_one(
    ctx: &EvalContext,
    window: usize,
    segments: &[TimeSeries],
) -> Result<(WindowScreen, Vec<WindowOutcome>), FrameworkError> {
    let (artifacts, screen) = calibrate_window(
        &ctx.config.windowed,
        &ctx.config.attributes,
        window,
        segments,
        &ctx.neighbors,
    )?;
    let outcomes = evaluate_window_artifacts(
        &ctx.config.windowed,
        &ctx.strategies,
        &ctx.executor,
        artifacts,
    )?;
    Ok((screen, outcomes))
}

/// The config's test-only fault/latency injection (see
/// [`ServeConfig::with_evaluation_jitter`] and
/// [`ServeConfig::with_evaluator_panic_at`]): deterministic per-window
/// sleep to scramble completion order, and an induced worker panic.
fn apply_test_hooks(ctx: &EvalContext, window: usize) {
    if let Some((seed, max_us)) = ctx.config.eval_jitter {
        if max_us > 0 {
            let us = splitmix(seed ^ (window as u64)) % (max_us + 1);
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
    if ctx.config.eval_panic_at == Some(window) {
        // The fault test's whole point: prove a panicking worker surfaces
        // as a structured error without hanging `finish`.
        // sd-lint: allow(P001, test-only fault injection behind an explicit config hook)
        panic!("induced evaluator panic at window {window}");
    }
}

/// Reorder body: buffer out-of-order results, publish strictly in window
/// order, stop at the first in-order failure.
fn run_reorder(
    results: &Receiver<EvalResult>,
    updates: &Sender<WindowUpdate>,
    depth: &DepthGauge,
) -> ReorderOutput {
    let mut out = ReorderOutput {
        outcomes: Vec::new(),
        screens: Vec::new(),
        window_lags: Vec::new(),
        published: 0,
        error: None,
    };
    let mut buffer: BTreeMap<usize, EvalResult> = BTreeMap::new();
    let mut next_pub = 0usize;
    while let Ok(res) = results.recv() {
        let window = res.window;
        if window < next_pub || buffer.insert(window, res).is_some() {
            out.error = Some(FrameworkError::Internal(format!(
                "two evaluators returned window {window}"
            )));
            return out;
        }
        while let Some(ready) = buffer.remove(&next_pub) {
            match ready.result {
                Ok((screen, outcomes)) => {
                    // Live subscribers are optional; a dropped update
                    // receiver must not fail the stream.
                    let _ = updates.send(WindowUpdate {
                        window_index: next_pub,
                        screen: screen.clone(),
                        outcomes: outcomes.clone(),
                    });
                    out.screens.push(screen);
                    out.outcomes.extend(outcomes);
                    out.window_lags.push(WindowLag {
                        window_index: next_pub,
                        queue_wait_us: ready.queue_wait_us,
                        evaluate_us: ready.evaluate_us,
                    });
                    out.published += 1;
                    depth.on_publish();
                    next_pub += 1;
                }
                Err(e) => {
                    // Windows after a failed one are withheld: the serial
                    // path never evaluated past a failure either.
                    out.error = Some(e);
                    return out;
                }
            }
        }
    }
    out
}

/// Splitmix64 finalizer — the jitter hook's deterministic per-window
/// stream (same mixer as [`crate::shard_of`]).
fn splitmix(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Saturating µs between two instants (monotonic, so `later >= earlier`
/// in practice; saturation keeps the counters total even if not).
// sd-lint: allow(D003, lag observability plumbing; never feeds result values)
fn micros_between(earlier: Instant, later: Instant) -> u64 {
    later
        .saturating_duration_since(earlier)
        .as_micros()
        .min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_gauge_tracks_high_water() {
        let gauge = DepthGauge::new();
        gauge.on_dispatch();
        gauge.on_dispatch();
        gauge.on_dispatch();
        assert_eq!(gauge.max_pending(), 3);
        gauge.on_publish();
        gauge.on_publish();
        gauge.on_dispatch();
        // Depth fell to 2 after publishing; the high-water mark stays.
        assert_eq!(gauge.max_pending(), 3);
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix(7), splitmix(7));
        assert_ne!(splitmix(7), splitmix(8));
    }
}
