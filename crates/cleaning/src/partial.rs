use crate::{CleaningContext, CleaningOutcome, CompositeStrategy, ModelFit};
use rand::RngCore;
use sd_data::{CleanedView, Dataset};
use sd_glitch::{GlitchIndex, GlitchMatrix};

/// Cost-proxy partial cleaning (§5.2): rank every series by its normalized
/// glitch score, then clean only the dirtiest `fraction` of them.
///
/// "We ranked each time series according to its aggregated and normalized
/// glitch score, and cleaned the data from the highest glitch score, until
/// a pre-determined proportion of the data was cleaned." `fraction = 0`
/// leaves the data untouched; `fraction = 1` is full cleaning.
#[derive(Debug, Clone)]
pub struct PartialCleaner {
    index: GlitchIndex,
    fraction: f64,
}

/// What a partial-cleaning pass did.
#[derive(Debug, Clone)]
pub struct PartialOutcome {
    /// Indices of the series that were cleaned, dirtiest first.
    pub cleaned_indices: Vec<usize>,
    /// Aggregate cleaning counters.
    pub outcome: CleaningOutcome,
}

impl PartialCleaner {
    /// Creates a partial cleaner; `fraction` is clamped to `[0, 1]`.
    pub fn new(index: GlitchIndex, fraction: f64) -> Self {
        PartialCleaner {
            index,
            fraction: fraction.clamp(0.0, 1.0),
        }
    }

    /// The cleaning fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Which series a pass over `glitches` would clean (dirtiest first).
    pub fn select(&self, glitches: &[GlitchMatrix]) -> Vec<usize> {
        self.select_from_ranked(&self.index.rank_dirtiest(glitches))
    }

    /// Like [`PartialCleaner::select`], but over a precomputed
    /// dirtiest-first ranking ([`GlitchIndex::rank_dirtiest`]) — the cost
    /// sweep ranks each replication once and derives every budget
    /// fraction's selection as a prefix of that one ranking.
    pub fn select_from_ranked(&self, ranked: &[usize]) -> Vec<usize> {
        let count = (self.fraction * ranked.len() as f64).round() as usize;
        ranked[..count].to_vec()
    }

    /// Cleans the dirtiest `fraction` of series with `strategy`.
    pub fn clean(
        &self,
        data: &mut Dataset,
        glitches: &[GlitchMatrix],
        strategy: &CompositeStrategy,
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
    ) -> PartialOutcome {
        let cleaned_indices = self.select(glitches);
        let mut mask = vec![false; data.num_series()];
        for &i in &cleaned_indices {
            mask[i] = true;
        }
        let outcome = strategy.clean_filtered(data, glitches, ctx, rng, Some(&mask));
        PartialOutcome {
            cleaned_indices,
            outcome,
        }
    }

    /// Patch-recording variant of [`PartialCleaner::clean`]: cleans the
    /// dirtiest `fraction` of series against the borrowed `base`, returning
    /// a copy-on-write [`CleanedView`] (see
    /// [`CompositeStrategy::clean_patch_filtered`]). Bit-identical to
    /// [`PartialCleaner::clean`] on a clone of `base` for the same RNG
    /// state; `model` optionally supplies a mask-matched pre-fitted
    /// [`ModelFit`].
    ///
    /// This ranks `glitches` on every call. A caller evaluating many
    /// fractions over one ranking (the engine cost sweep) should instead
    /// rank once, derive masks via [`PartialCleaner::select_from_ranked`],
    /// and call [`CompositeStrategy::clean_patch_filtered`] directly.
    pub fn clean_patch<'a>(
        &self,
        base: &'a Dataset,
        glitches: &[GlitchMatrix],
        strategy: &CompositeStrategy,
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
        model: Option<&ModelFit>,
    ) -> (CleanedView<'a>, PartialOutcome) {
        let cleaned_indices = self.select(glitches);
        let mut mask = vec![false; base.num_series()];
        for &i in &cleaned_indices {
            mask[i] = true;
        }
        let (view, outcome) =
            strategy.clean_patch_filtered(base, glitches, ctx, rng, Some(&mask), model);
        (
            view,
            PartialOutcome {
                cleaned_indices,
                outcome,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_data::{NodeId, TimeSeries};
    use sd_glitch::{GlitchType, GlitchWeights};
    use sd_stats::AttributeTransform;

    fn matrices() -> Vec<GlitchMatrix> {
        // Series 0: clean; series 1: very dirty; series 2: mildly dirty.
        let clean = GlitchMatrix::new(1, 10);
        let mut dirty = GlitchMatrix::new(1, 10);
        for t in 0..8 {
            dirty.set(0, GlitchType::Missing, t);
        }
        let mut mild = GlitchMatrix::new(1, 10);
        mild.set(0, GlitchType::Missing, 0);
        vec![clean, dirty, mild]
    }

    fn dataset() -> Dataset {
        let series: Vec<TimeSeries> = (0..3)
            .map(|i| {
                let mut s = TimeSeries::new(NodeId::new(0, 0, i), 1, 10);
                for t in 0..10 {
                    s.set(0, t, 50.0 + t as f64);
                }
                s
            })
            .collect();
        Dataset::new(vec!["a"], series).unwrap()
    }

    fn context(data: &Dataset) -> CleaningContext {
        CleaningContext::fit(data, &[AttributeTransform::Identity], 3.0)
    }

    #[test]
    fn selection_is_dirtiest_first() {
        let pc = PartialCleaner::new(GlitchIndex::new(GlitchWeights::uniform()), 1.0 / 3.0);
        assert_eq!(pc.select(&matrices()), vec![1]);
        let pc2 = PartialCleaner::new(GlitchIndex::new(GlitchWeights::uniform()), 2.0 / 3.0);
        assert_eq!(pc2.select(&matrices()), vec![1, 2]);
    }

    #[test]
    fn zero_fraction_cleans_nothing() {
        let data0 = dataset();
        let mut data = dataset();
        let ctx = context(&data);
        let mut rng = StdRng::seed_from_u64(1);
        let pc = PartialCleaner::new(GlitchIndex::default(), 0.0);
        let out = pc.clean(&mut data, &matrices(), &paper_strategy(4), &ctx, &mut rng);
        assert!(out.cleaned_indices.is_empty());
        assert_eq!(out.outcome.cells_changed(), 0);
        assert!(data.same_data(&data0));
    }

    #[test]
    fn full_fraction_cleans_everything_flagged() {
        let mut data = dataset();
        let ctx = context(&data);
        let mut rng = StdRng::seed_from_u64(1);
        let pc = PartialCleaner::new(GlitchIndex::default(), 1.0);
        let out = pc.clean(&mut data, &matrices(), &paper_strategy(4), &ctx, &mut rng);
        assert_eq!(out.cleaned_indices.len(), 3);
        // 8 + 1 flagged missing cells get mean-replaced.
        assert_eq!(out.outcome.mean_imputed_cells, 9);
    }

    #[test]
    fn fraction_is_clamped() {
        let pc = PartialCleaner::new(GlitchIndex::default(), 7.5);
        assert_eq!(pc.fraction(), 1.0);
        let pc = PartialCleaner::new(GlitchIndex::default(), -0.5);
        assert_eq!(pc.fraction(), 0.0);
    }

    #[test]
    fn patch_path_matches_in_place_partial_cleaning() {
        // Same RNG seed, same mask: the materialized copy-on-write view
        // must equal the in-place result bit for bit (the cost sweep's
        // engine/reference bit-identity rests on this).
        for strategy in [paper_strategy(1), paper_strategy(4), paper_strategy(5)] {
            let mut in_place = dataset();
            let ctx = context(&in_place);
            let pc = PartialCleaner::new(GlitchIndex::new(GlitchWeights::uniform()), 2.0 / 3.0);
            let mut rng = StdRng::seed_from_u64(77);
            let out_a = pc.clean(&mut in_place, &matrices(), &strategy, &ctx, &mut rng);

            let base = dataset();
            let mut rng = StdRng::seed_from_u64(77);
            let (view, out_b) = pc.clean_patch(&base, &matrices(), &strategy, &ctx, &mut rng, None);
            assert_eq!(out_a.cleaned_indices, out_b.cleaned_indices);
            assert_eq!(out_a.outcome, out_b.outcome);
            for i in 0..base.num_series() {
                assert!(
                    view.series_at(i).same_data(&in_place.series()[i]),
                    "series {i} diverged under {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn partial_cleaning_touches_only_selected_series() {
        let mut data = dataset();
        let ctx = context(&data);
        let mut rng = StdRng::seed_from_u64(1);
        let pc = PartialCleaner::new(GlitchIndex::new(GlitchWeights::uniform()), 1.0 / 3.0);
        let out = pc.clean(&mut data, &matrices(), &paper_strategy(4), &ctx, &mut rng);
        assert_eq!(out.cleaned_indices, vec![1]);
        assert_eq!(out.outcome.mean_imputed_cells, 8);
    }
}
