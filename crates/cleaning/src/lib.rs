//! Data-cleaning strategies (§5.1 of the paper).
//!
//! The paper evaluates five composite strategies built from three
//! primitives, all reproduced here:
//!
//! * [`Winsorizer`] — repair outliers by clamping to the closest acceptable
//!   value, with 3-σ limits calibrated on the ideal sample (in the working
//!   space of each attribute's transform);
//! * [`MeanImputer`] — replace missing/inconsistent cells with the ideal
//!   sample's attribute mean (cheap, spikes the density at one point);
//! * [`MvnImputer`] — model-based imputation emulating SAS `PROC MI`:
//!   fit a multivariate Gaussian by EM over the observed cells, then draw
//!   each record's missing block from the conditional Gaussian. On skewed
//!   or bounded attributes this produces out-of-domain draws (negative
//!   loads, ratios above 1) — the paper's headline failure mode.
//!
//! [`CompositeStrategy`] combines the primitives; [`paper_strategy`]
//! returns Strategies 1–5 exactly as §5.1 defines them. [`PartialCleaner`]
//! implements the §5.2 cost proxy: clean only the dirtiest x % of series by
//! normalized glitch score.

// Index-based loops are the clearer idiom in the dense numeric kernels
// of this crate.
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)]

mod context;
mod mean;
mod mi;
mod partial;
mod strategy;
mod winsorize;

pub use context::CleaningContext;
pub use mean::MeanImputer;
pub use mi::{MvnImputer, MvnModel};
pub use partial::PartialCleaner;
pub use strategy::{
    paper_strategy, CleaningOutcome, CleaningStrategy, CompositeStrategy, MissingTreatment,
    ModelFit, OutlierTreatment,
};
pub use winsorize::Winsorizer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_strategies_have_expected_composition() {
        let s1 = paper_strategy(1);
        assert_eq!(s1.missing_treatment(), MissingTreatment::ModelImpute);
        assert_eq!(s1.outlier_treatment(), OutlierTreatment::Winsorize);
        let s2 = paper_strategy(2);
        assert_eq!(s2.outlier_treatment(), OutlierTreatment::Ignore);
        let s3 = paper_strategy(3);
        assert_eq!(s3.missing_treatment(), MissingTreatment::Ignore);
        assert_eq!(s3.outlier_treatment(), OutlierTreatment::Winsorize);
        let s4 = paper_strategy(4);
        assert_eq!(s4.missing_treatment(), MissingTreatment::MeanImpute);
        let s5 = paper_strategy(5);
        assert_eq!(s5.missing_treatment(), MissingTreatment::MeanImpute);
        assert_eq!(s5.outlier_treatment(), OutlierTreatment::Winsorize);
    }

    #[test]
    #[should_panic(expected = "1..=5")]
    fn unknown_strategy_panics() {
        paper_strategy(6);
    }
}
