use crate::CleaningContext;

/// Constant-value imputation: replace a treated cell with the ideal
/// sample's attribute mean (Strategies 4 and 5, §5.1).
///
/// "This is an inexpensive strategy, and results in a 100 % glitch
/// improvement … but the data set is now distorted, since there is a spike
/// in density at the mean of the distribution" (§2.1). The mean is taken in
/// working space and mapped back to the raw scale, so under the log factor
/// the replacement is the geometric mean — always a legal positive value.
#[derive(Debug, Clone)]
pub struct MeanImputer {
    /// Per-attribute replacement values in raw space.
    replacements: Vec<f64>,
}

impl MeanImputer {
    /// Builds the imputer from a calibrated context.
    pub fn from_context(ctx: &CleaningContext) -> Self {
        let replacements = ctx
            .transforms()
            .iter()
            .zip(ctx.ideal_means())
            .map(|(tf, &m)| tf.inverse(m))
            .collect();
        MeanImputer { replacements }
    }

    /// The raw-space replacement value for attribute `attr`.
    pub fn replacement(&self, attr: usize) -> f64 {
        self.replacements[attr]
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.replacements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{Dataset, NodeId, TimeSeries};
    use sd_stats::AttributeTransform;

    fn ideal() -> Dataset {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 2, 4);
        for (t, v) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            s.set(0, t, *v);
            s.set(1, t, 0.8);
        }
        Dataset::new(vec!["load", "ratio"], vec![s]).unwrap()
    }

    #[test]
    fn identity_transform_uses_arithmetic_mean() {
        let ctx = CleaningContext::fit(
            &ideal(),
            &[AttributeTransform::Identity, AttributeTransform::Identity],
            3.0,
        );
        let m = MeanImputer::from_context(&ctx);
        assert!((m.replacement(0) - 25.0).abs() < 1e-12);
        assert!((m.replacement(1) - 0.8).abs() < 1e-12);
        assert_eq!(m.num_attributes(), 2);
    }

    #[test]
    fn log_transform_uses_geometric_mean() {
        let ctx = CleaningContext::fit(
            &ideal(),
            &[AttributeTransform::log(), AttributeTransform::Identity],
            3.0,
        );
        let m = MeanImputer::from_context(&ctx);
        let geometric = (10.0f64 * 20.0 * 30.0 * 40.0).powf(0.25);
        assert!((m.replacement(0) - geometric).abs() < 1e-9);
        assert!(m.replacement(0) > 0.0);
    }
}
