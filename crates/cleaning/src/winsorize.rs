use crate::CleaningContext;

/// Winsorization: repair an outlier "by attributing the closest acceptable
/// (non-outlying) value" (§1.1) — clamp to the nearest 3-σ limit.
///
/// Clamping happens in each attribute's working space (log space when the
/// log-transform factor is active), then maps back to the raw scale. This
/// reproduces the paper's §5.3 observation: without the transform the
/// right tail is clamped, with it the left tail.
#[derive(Debug, Clone)]
pub struct Winsorizer {
    limits: Vec<(f64, f64)>,
    transforms: Vec<sd_stats::AttributeTransform>,
}

impl Winsorizer {
    /// Builds a winsorizer from a calibrated context.
    pub fn from_context(ctx: &CleaningContext) -> Self {
        Winsorizer {
            limits: ctx.limits().to_vec(),
            transforms: ctx.transforms().to_vec(),
        }
    }

    /// The per-attribute working-space limits.
    pub fn limits(&self) -> &[(f64, f64)] {
        &self.limits
    }

    /// Winsorizes a raw value of attribute `attr`: returns the repaired raw
    /// value (identical to the input when it is inside the limits or
    /// missing).
    pub fn repair(&self, attr: usize, x: f64) -> f64 {
        if x.is_nan() {
            return x;
        }
        let tf = &self.transforms[attr];
        let w = tf.forward(x);
        let (lo, hi) = self.limits[attr];
        if w < lo {
            tf.inverse(lo)
        } else if w > hi {
            tf.inverse(hi)
        } else {
            x
        }
    }

    /// Whether a raw value would be changed by [`Winsorizer::repair`].
    pub fn is_outlying(&self, attr: usize, x: f64) -> bool {
        if x.is_nan() {
            return false;
        }
        let w = self.transforms[attr].forward(x);
        let (lo, hi) = self.limits[attr];
        w < lo || w > hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{Dataset, NodeId, TimeSeries};
    use sd_stats::AttributeTransform;

    fn context(transform: AttributeTransform) -> CleaningContext {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 40);
        for t in 0..40 {
            s.set(0, t, 90.0 + t as f64); // 90..130
        }
        let ds = Dataset::new(vec!["load"], vec![s]).unwrap();
        CleaningContext::fit(&ds, &[transform], 3.0)
    }

    #[test]
    fn values_inside_limits_are_untouched() {
        let w = Winsorizer::from_context(&context(AttributeTransform::Identity));
        assert_eq!(w.repair(0, 100.0), 100.0);
        assert!(!w.is_outlying(0, 100.0));
    }

    #[test]
    fn high_outliers_clamp_to_upper_limit() {
        let ctx = context(AttributeTransform::Identity);
        let w = Winsorizer::from_context(&ctx);
        let (_, hi) = ctx.limits()[0];
        let repaired = w.repair(0, 1e6);
        assert!((repaired - hi).abs() < 1e-9);
        assert!(w.is_outlying(0, 1e6));
        // Repaired value is acceptable: repairing again is a no-op.
        assert_eq!(w.repair(0, repaired), repaired);
    }

    #[test]
    fn low_outliers_clamp_to_lower_limit() {
        let ctx = context(AttributeTransform::Identity);
        let w = Winsorizer::from_context(&ctx);
        let (lo, _) = ctx.limits()[0];
        assert!((w.repair(0, -1e6) - lo).abs() < 1e-9);
    }

    #[test]
    fn log_space_clamping_returns_positive_raw_values() {
        let ctx = context(AttributeTransform::log());
        let w = Winsorizer::from_context(&ctx);
        // A near-zero dropout is a log-space outlier; its repair must be a
        // positive raw value at the lower limit.
        let repaired = w.repair(0, 1e-5);
        assert!(repaired > 0.0);
        assert!(w.is_outlying(0, 1e-5));
        let (lo, _) = ctx.limits()[0];
        assert!((repaired.ln() - lo).abs() < 1e-9);
    }

    #[test]
    fn missing_values_pass_through() {
        let w = Winsorizer::from_context(&context(AttributeTransform::Identity));
        assert!(w.repair(0, f64::NAN).is_nan());
        assert!(!w.is_outlying(0, f64::NAN));
    }
}
