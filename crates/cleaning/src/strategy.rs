use crate::{CleaningContext, MeanImputer, MvnImputer, Winsorizer};
use rand::RngCore;
use sd_data::{CleanedView, Dataset, DatasetPatch, TimeSeries};
use sd_glitch::{GlitchMatrix, GlitchType};

/// How a strategy treats missing and inconsistent values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingTreatment {
    /// Leave them in place.
    Ignore,
    /// Replace with the ideal sample's attribute mean (cheap).
    MeanImpute,
    /// Model-based multivariate-Gaussian imputation (`PROC MI` emulation).
    ModelImpute,
}

/// How a strategy treats outliers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierTreatment {
    /// Leave them in place.
    Ignore,
    /// Clamp to the nearest 3-σ limit (winsorization).
    Winsorize,
}

/// Counters describing what a cleaning pass actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CleaningOutcome {
    /// Cells replaced by the model-based imputer.
    pub model_imputed_cells: usize,
    /// Cells replaced by the ideal mean.
    pub mean_imputed_cells: usize,
    /// Cells clamped by winsorization.
    pub winsorized_cells: usize,
    /// Treated cells left missing (fully-missing records under the model
    /// imputer — the paper's residual 0.028 %).
    pub residual_missing_cells: usize,
    /// Whether the imputation model could not be fitted (treated cells were
    /// then left as-is).
    pub model_fit_failed: bool,
}

impl CleaningOutcome {
    /// Total cells modified by the pass.
    pub fn cells_changed(&self) -> usize {
        self.model_imputed_cells + self.mean_imputed_cells + self.winsorized_cells
    }

    fn merge(&mut self, other: CleaningOutcome) {
        self.model_imputed_cells += other.model_imputed_cells;
        self.mean_imputed_cells += other.mean_imputed_cells;
        self.winsorized_cells += other.winsorized_cells;
        self.residual_missing_cells += other.residual_missing_cells;
        self.model_fit_failed |= other.model_fit_failed;
    }
}

/// A cleaning strategy: rewrites a dirty data set in place, guided by its
/// glitch annotations and a calibrated [`CleaningContext`].
pub trait CleaningStrategy {
    /// Human-readable name (used in reports and figures).
    fn name(&self) -> String;

    /// Cleans `data` in place. `glitches` must be aligned with
    /// `data.series()` and reflect the *dirty* data's annotations.
    fn clean(
        &self,
        data: &mut Dataset,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
    ) -> CleaningOutcome;
}

/// A composite strategy combining one missing/inconsistent treatment with
/// one outlier treatment — the space the paper's five strategies live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositeStrategy {
    missing: MissingTreatment,
    outliers: OutlierTreatment,
}

/// The strategy-invariant part of model-based imputation: the MVN imputer
/// fitted on the (masked) dirty data with treated cells hidden.
///
/// Fitting is deterministic (EM, no RNG) and depends only on the dirty
/// sample, its glitch annotations, and the mask — not on which composite
/// strategy later consumes it. The experiment engine therefore fits once
/// per replication and shares the result across every model-imputing
/// strategy unit, which is bit-identical to refitting per strategy.
#[derive(Debug, Clone)]
pub struct ModelFit {
    imputer: Option<MvnImputer>,
    failed: bool,
}

impl ModelFit {
    /// Fits the imputation model on the selected series of `base`, with
    /// treated (missing + inconsistent) cells masked out — exactly the rows
    /// a model-imputing strategy would fit on.
    pub fn fit(
        base: &Dataset,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        mask: Option<&[bool]>,
    ) -> Self {
        assert_eq!(
            base.num_series(),
            glitches.len(),
            "glitch annotations must align with series"
        );
        let v = base.num_attributes();
        let transforms = ctx.transforms();
        let selected = |i: usize| mask.is_none_or(|m| m[i]);
        let mut rows = Vec::new();
        for (i, series) in base.series().iter().enumerate() {
            if !selected(i) {
                continue;
            }
            let g = &glitches[i];
            for t in 0..series.len() {
                let mut row = Vec::with_capacity(v);
                for (a, tf) in transforms.iter().enumerate() {
                    let treated =
                        g.get(a, GlitchType::Missing, t) || g.get(a, GlitchType::Inconsistent, t);
                    let x = series.get(a, t);
                    row.push(if treated { f64::NAN } else { tf.forward(x) });
                }
                rows.push(row);
            }
        }
        match MvnImputer::fit(&rows) {
            Ok(imp) => ModelFit {
                imputer: Some(imp),
                failed: false,
            },
            Err(_) => ModelFit {
                imputer: None,
                failed: true,
            },
        }
    }

    /// The fitted imputer (`None` when the fit failed).
    pub fn imputer(&self) -> Option<&MvnImputer> {
        self.imputer.as_ref()
    }

    /// Whether the model could not be fitted.
    pub fn failed(&self) -> bool {
        self.failed
    }
}

/// Uniform cell access over the two cleaning targets: a dataset rewritten
/// in place, or a copy-on-write patch recorder. The cleaning pass itself is
/// written once against this trait, so both paths execute identical logic
/// (same reads, same writes, same RNG draws) and stay bit-identical.
trait CellStore {
    fn num_series(&self) -> usize;
    fn num_attributes(&self) -> usize;
    fn series_len(&self, series: usize) -> usize;
    fn get(&self, series: usize, attr: usize, t: usize) -> f64;
    fn set(&mut self, series: usize, attr: usize, t: usize, value: f64);
}

/// In-place store over a mutable dataset.
struct DatasetStore<'a>(&'a mut Dataset);

impl CellStore for DatasetStore<'_> {
    fn num_series(&self) -> usize {
        self.0.num_series()
    }
    fn num_attributes(&self) -> usize {
        self.0.num_attributes()
    }
    fn series_len(&self, series: usize) -> usize {
        self.0.series_at(series).len()
    }
    fn get(&self, series: usize, attr: usize, t: usize) -> f64 {
        self.0.series_at(series).get(attr, t)
    }
    fn set(&mut self, series: usize, attr: usize, t: usize, value: f64) {
        self.0.series_mut()[series].set(attr, t, value);
    }
}

/// Copy-on-write store: the first write to a series clones it from the
/// base; every write is also recorded in the cell patch.
struct PatchStore<'a> {
    base: &'a Dataset,
    patched: Vec<Option<TimeSeries>>,
    patch: DatasetPatch,
}

impl<'a> PatchStore<'a> {
    fn new(base: &'a Dataset) -> Self {
        PatchStore {
            patched: vec![None; base.num_series()],
            patch: DatasetPatch::new(base.num_series()),
            base,
        }
    }

    fn into_view(self) -> CleanedView<'a> {
        CleanedView::new(self.base, self.patched, self.patch)
    }
}

impl CellStore for PatchStore<'_> {
    fn num_series(&self) -> usize {
        self.base.num_series()
    }
    fn num_attributes(&self) -> usize {
        self.base.num_attributes()
    }
    fn series_len(&self, series: usize) -> usize {
        self.base.series_at(series).len()
    }
    fn get(&self, series: usize, attr: usize, t: usize) -> f64 {
        match &self.patched[series] {
            Some(s) => s.get(attr, t),
            None => self.base.series_at(series).get(attr, t),
        }
    }
    fn set(&mut self, series: usize, attr: usize, t: usize, value: f64) {
        let slot = &mut self.patched[series];
        if slot.is_none() {
            *slot = Some(self.base.series_at(series).clone());
        }
        slot.as_mut()
            .expect("just materialized")
            .set(attr, t, value);
        self.patch.record(series, attr, t, value);
    }
}

/// Returns the paper's Strategy `k` (§5.1), `k ∈ 1..=5`:
///
/// 1. model-impute missing/inconsistent + winsorize outliers;
/// 2. model-impute missing/inconsistent, ignore outliers;
/// 3. ignore missing/inconsistent, winsorize outliers;
/// 4. mean-replace missing/inconsistent, ignore outliers;
/// 5. mean-replace missing/inconsistent + winsorize outliers.
pub fn paper_strategy(k: u32) -> CompositeStrategy {
    match k {
        1 => CompositeStrategy::new(MissingTreatment::ModelImpute, OutlierTreatment::Winsorize),
        2 => CompositeStrategy::new(MissingTreatment::ModelImpute, OutlierTreatment::Ignore),
        3 => CompositeStrategy::new(MissingTreatment::Ignore, OutlierTreatment::Winsorize),
        4 => CompositeStrategy::new(MissingTreatment::MeanImpute, OutlierTreatment::Ignore),
        5 => CompositeStrategy::new(MissingTreatment::MeanImpute, OutlierTreatment::Winsorize),
        _ => panic!("paper strategies are numbered 1..=5, got {k}"),
    }
}

impl CompositeStrategy {
    /// Creates a composite strategy.
    pub fn new(missing: MissingTreatment, outliers: OutlierTreatment) -> Self {
        CompositeStrategy { missing, outliers }
    }

    /// The missing/inconsistent treatment.
    pub fn missing_treatment(&self) -> MissingTreatment {
        self.missing
    }

    /// The outlier treatment.
    pub fn outlier_treatment(&self) -> OutlierTreatment {
        self.outliers
    }

    /// Cleans only the series where `mask` is `true` (all series when
    /// `mask` is `None`). The imputation model is fitted on exactly the
    /// masked series — the data the strategy was handed, as `PROC MI`
    /// would see it.
    pub fn clean_filtered(
        &self,
        data: &mut Dataset,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
        mask: Option<&[bool]>,
    ) -> CleaningOutcome {
        assert_eq!(
            data.num_series(),
            glitches.len(),
            "glitch annotations must align with series"
        );
        if let Some(m) = mask {
            assert_eq!(m.len(), data.num_series(), "mask must align with series");
        }
        let model = (self.missing == MissingTreatment::ModelImpute)
            .then(|| ModelFit::fit(data, glitches, ctx, mask));
        self.clean_in(
            &mut DatasetStore(data),
            glitches,
            ctx,
            rng,
            mask,
            model.as_ref(),
        )
    }

    /// Patch-recording variant of [`CompositeStrategy::clean`]: instead of
    /// rewriting a dataset in place, records every touched cell against the
    /// (borrowed, unmodified) `base` and returns a copy-on-write
    /// [`CleanedView`] — only touched series are cloned.
    ///
    /// `model` optionally supplies a pre-fitted [`ModelFit`] (the engine
    /// shares one per replication across its model-imputing strategy
    /// units); when `None` and the strategy model-imputes, the fit runs
    /// here, exactly as in the in-place path. Both paths execute the same
    /// monomorphized cleaning pass, so for equal inputs and RNG state the
    /// materialized view equals the in-place result bit for bit.
    pub fn clean_patch<'a>(
        &self,
        base: &'a Dataset,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
        model: Option<&ModelFit>,
    ) -> (CleanedView<'a>, CleaningOutcome) {
        self.clean_patch_filtered(base, glitches, ctx, rng, None, model)
    }

    /// Patch-recording variant of [`CompositeStrategy::clean_filtered`]:
    /// cleans only the series where `mask` is `true`, recording touched
    /// cells against the borrowed `base` exactly like
    /// [`CompositeStrategy::clean_patch`].
    ///
    /// When the strategy model-imputes and no pre-fitted `model` is
    /// supplied, the fit runs here **on the masked series** — matching
    /// `clean_filtered`, whose imputation model sees only the data the
    /// strategy was handed. A caller sharing a [`ModelFit`] across calls
    /// must therefore key it by mask (the cost sweep shares per budget
    /// fraction), or the paths diverge.
    pub fn clean_patch_filtered<'a>(
        &self,
        base: &'a Dataset,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
        mask: Option<&[bool]>,
        model: Option<&ModelFit>,
    ) -> (CleanedView<'a>, CleaningOutcome) {
        assert_eq!(
            base.num_series(),
            glitches.len(),
            "glitch annotations must align with series"
        );
        if let Some(m) = mask {
            assert_eq!(m.len(), base.num_series(), "mask must align with series");
        }
        let fitted;
        let model = if self.missing == MissingTreatment::ModelImpute && model.is_none() {
            fitted = ModelFit::fit(base, glitches, ctx, mask);
            Some(&fitted)
        } else {
            model
        };
        let mut store = PatchStore::new(base);
        let outcome = self.clean_in(&mut store, glitches, ctx, rng, mask, model);
        (store.into_view(), outcome)
    }

    /// The cleaning pass, written once against [`CellStore`].
    fn clean_in<S: CellStore>(
        &self,
        store: &mut S,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
        mask: Option<&[bool]>,
        model: Option<&ModelFit>,
    ) -> CleaningOutcome {
        let v = store.num_attributes();
        let transforms = ctx.transforms().to_vec();
        let selected = |i: usize| mask.is_none_or(|m| m[i]);

        let mut outcome = CleaningOutcome::default();

        let imputer = if self.missing == MissingTreatment::ModelImpute {
            let fit = model.expect("model-imputing strategies receive a ModelFit");
            if fit.failed() {
                outcome.model_fit_failed = true;
            }
            fit.imputer()
        } else {
            None
        };

        let mean_imputer = if self.missing == MissingTreatment::MeanImpute {
            Some(MeanImputer::from_context(ctx))
        } else {
            None
        };
        let winsorizer = if self.outliers == OutlierTreatment::Winsorize {
            Some(Winsorizer::from_context(ctx))
        } else {
            None
        };

        let mut wrec = vec![0.0; v];
        let mut treat = vec![false; v];
        for i in 0..store.num_series() {
            if !selected(i) {
                continue;
            }
            let g = &glitches[i];
            let mut series_outcome = CleaningOutcome::default();
            for t in 0..store.series_len(i) {
                // Which cells does the missing-treatment replace?
                for (a, slot) in treat.iter_mut().enumerate() {
                    *slot = self.missing != MissingTreatment::Ignore
                        && (g.get(a, GlitchType::Missing, t)
                            || g.get(a, GlitchType::Inconsistent, t));
                }

                match self.missing {
                    MissingTreatment::ModelImpute => {
                        if let Some(imp) = imputer {
                            for (a, tf) in transforms.iter().enumerate() {
                                wrec[a] = if treat[a] {
                                    f64::NAN
                                } else {
                                    tf.forward(store.get(i, a, t))
                                };
                            }
                            imp.impute_record(&mut wrec, rng);
                            for a in 0..v {
                                if !treat[a] {
                                    continue;
                                }
                                if wrec[a].is_nan() {
                                    // Fully-missing record: unimputable.
                                    store.set(i, a, t, f64::NAN);
                                    series_outcome.residual_missing_cells += 1;
                                } else {
                                    store.set(i, a, t, transforms[a].inverse(wrec[a]));
                                    series_outcome.model_imputed_cells += 1;
                                }
                            }
                        }
                    }
                    MissingTreatment::MeanImpute => {
                        if let Some(mi) = &mean_imputer {
                            for a in 0..v {
                                if treat[a] {
                                    store.set(i, a, t, mi.replacement(a));
                                    series_outcome.mean_imputed_cells += 1;
                                }
                            }
                        }
                    }
                    MissingTreatment::Ignore => {}
                }

                // Winsorize by value: clamp *any* present cell outside the
                // acceptable limits — original outliers and out-of-limits
                // imputations alike. This is the paper's semantics: after
                // a winsorizing strategy runs, the treated data contains no
                // outliers at all (Table 1 reports exactly 0).
                if let Some(wz) = &winsorizer {
                    for a in 0..v {
                        let x = store.get(i, a, t);
                        if wz.is_outlying(a, x) {
                            let repaired = wz.repair(a, x);
                            store.set(i, a, t, repaired);
                            series_outcome.winsorized_cells += 1;
                        }
                    }
                }
            }
            outcome.merge(series_outcome);
        }
        outcome
    }
}

impl CleaningStrategy for CompositeStrategy {
    fn name(&self) -> String {
        let miss = match self.missing {
            MissingTreatment::Ignore => None,
            MissingTreatment::MeanImpute => Some("replace with mean"),
            MissingTreatment::ModelImpute => Some("impute"),
        };
        let out = match self.outliers {
            OutlierTreatment::Ignore => None,
            OutlierTreatment::Winsorize => Some("winsorize"),
        };
        match (out, miss) {
            (Some(o), Some(m)) => format!("{o} and {m}"),
            (Some(o), None) => format!("{o} only"),
            (None, Some(m)) => format!("{m} only"),
            (None, None) => "no-op".to_string(),
        }
    }

    fn clean(
        &self,
        data: &mut Dataset,
        glitches: &[GlitchMatrix],
        ctx: &CleaningContext,
        rng: &mut dyn RngCore,
    ) -> CleaningOutcome {
        self.clean_filtered(data, glitches, ctx, rng, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sd_data::{NodeId, TimeSeries};
    use sd_glitch::{ConstraintSet, GlitchDetector, OutlierDetector};
    use sd_stats::AttributeTransform;

    /// A small fixture: ideal data plus one dirty series with all three
    /// glitch types.
    struct Fixture {
        ideal: Dataset,
        dirty: Dataset,
        glitches: Vec<GlitchMatrix>,
        ctx: CleaningContext,
    }

    fn fixture() -> Fixture {
        let transforms = [AttributeTransform::Identity, AttributeTransform::Identity];
        // Ideal: two correlated attributes around (100, 50).
        let mut ideal_series = TimeSeries::new(NodeId::new(0, 0, 0), 2, 50);
        for t in 0..50 {
            let x = 90.0 + (t as f64) * 0.4;
            ideal_series.set(0, t, x);
            ideal_series.set(1, t, 0.5 * x);
        }
        let ideal = Dataset::new(vec!["a", "b"], vec![ideal_series]).unwrap();

        // Dirty: same process plus glitches.
        let mut s = TimeSeries::new(NodeId::new(0, 0, 1), 2, 50);
        for t in 0..50 {
            let x = 90.0 + (t as f64) * 0.4;
            s.set(0, t, x);
            s.set(1, t, 0.5 * x);
        }
        s.set_missing(0, 3);
        s.set(0, 7, -40.0); // inconsistent (negative)
        s.set(0, 11, 5000.0); // outlier
        s.set_missing(0, 20);
        s.set_missing(1, 20); // fully-missing record
        let dirty = Dataset::new(vec!["a", "b"], vec![s]).unwrap();

        let detector = GlitchDetector::new(
            ConstraintSet::new(vec![sd_glitch::Constraint::NonNegative { attr: 0 }]),
            Some(OutlierDetector::fit(&ideal, &transforms, 3.0)),
        );
        let glitches = detector.detect_dataset(&dirty);
        let ctx = CleaningContext::fit(&ideal, &transforms, 3.0);
        Fixture {
            ideal,
            dirty,
            glitches,
            ctx,
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(paper_strategy(1).name(), "winsorize and impute");
        assert_eq!(paper_strategy(2).name(), "impute only");
        assert_eq!(paper_strategy(3).name(), "winsorize only");
        assert_eq!(paper_strategy(4).name(), "replace with mean only");
        assert_eq!(paper_strategy(5).name(), "winsorize and replace with mean");
    }

    #[test]
    fn strategy3_winsorizes_and_leaves_missing() {
        let f = fixture();
        let mut data = f.dirty.clone();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = paper_strategy(3).clean(&mut data, &f.glitches, &f.ctx, &mut rng);
        // Both the 5000 spike and the -40 value breach the 3-σ limits: the
        // corrupted negative is an outlier *and* an inconsistency, and
        // Strategy 3 (winsorize-only) clamps everything flagged as outlying.
        assert_eq!(outcome.winsorized_cells, 2);
        assert_eq!(outcome.cells_changed(), 2);
        let s = data.series_at(0);
        assert!(s.is_missing(0, 3), "missing untouched");
        let (lo, hi) = f.ctx.limits()[0];
        assert!(
            (s.get(0, 7) - lo).abs() < 1e-9,
            "negative clamped to lower limit"
        );
        assert!(
            (s.get(0, 11) - hi).abs() < 1e-9,
            "spike clamped to upper limit"
        );
    }

    #[test]
    fn strategy4_mean_replaces_all_missing_and_inconsistent() {
        let f = fixture();
        let mut data = f.dirty.clone();
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = paper_strategy(4).clean(&mut data, &f.glitches, &f.ctx, &mut rng);
        let s = data.series_at(0);
        // 2 missing on attr0 + 1 inconsistent + 1 missing on attr1 = 4.
        assert_eq!(outcome.mean_imputed_cells, 4);
        assert!(!s.is_missing(0, 3));
        assert!(!s.is_missing(1, 20));
        assert_eq!(s.get(0, 7), f.ctx.ideal_means()[0]);
        // Outlier untouched.
        assert_eq!(s.get(0, 11), 5000.0);
        assert_eq!(outcome.residual_missing_cells, 0);
    }

    #[test]
    fn strategy1_imputes_and_winsorizes_with_residual() {
        let f = fixture();
        let mut data = f.dirty.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = paper_strategy(1).clean(&mut data, &f.glitches, &f.ctx, &mut rng);
        assert!(!outcome.model_fit_failed);
        let s = data.series_at(0);
        // Partially-missing records imputed.
        assert!(!s.is_missing(0, 3));
        assert!(s.get(0, 7) != -40.0, "inconsistent replaced by imputation");
        // Fully-missing record left missing: the residual.
        assert!(s.is_missing(0, 20) && s.is_missing(1, 20));
        assert_eq!(outcome.residual_missing_cells, 2);
        // Outlier winsorized; out-of-limits imputations are clamped too,
        // so the treated data contains no out-of-limits values at all.
        assert!(s.get(0, 11) < 5000.0);
        assert!(outcome.winsorized_cells >= 1);
        let wz = Winsorizer::from_context(&f.ctx);
        for t in 0..s.len() {
            for a in 0..2 {
                assert!(
                    !wz.is_outlying(a, s.get(a, t)),
                    "residual out-of-limits value at attr {a}, t {t}"
                );
            }
        }
    }

    #[test]
    fn conditional_imputation_tracks_the_correlate() {
        // A fixture *without* the 5000 spike: with an untreated outlier in
        // the fit data the Gaussian covariance is wrecked (that distortion
        // is itself paper-faithful and covered elsewhere); here we verify
        // the conditional mechanics on well-behaved data.
        let f = fixture();
        let mut series = f.dirty.series_at(0).clone();
        series.set(0, 11, 94.4); // restore the clean value
        let mut data = Dataset::new(vec!["a", "b"], vec![series]).unwrap();
        let detector = GlitchDetector::new(
            ConstraintSet::new(vec![sd_glitch::Constraint::NonNegative { attr: 0 }]),
            Some(OutlierDetector::fit(
                &f.ideal,
                &[AttributeTransform::Identity, AttributeTransform::Identity],
                3.0,
            )),
        );
        let glitches = detector.detect_dataset(&data);
        let mut rng = StdRng::seed_from_u64(11);
        paper_strategy(2).clean(&mut data, &glitches, &f.ctx, &mut rng);
        let s = data.series_at(0);
        // At t=3, attr1 = 0.5 * attr0 ≈ 45.6 was observed; the imputed
        // attr0 should land near 2 × 45.6 thanks to the correlation.
        let imputed = s.get(0, 3);
        let expected = 2.0 * s.get(1, 3);
        assert!(
            (imputed - expected).abs() < 15.0,
            "imputed {imputed}, expected near {expected}"
        );
    }

    #[test]
    fn mask_restricts_cleaning_to_selected_series() {
        let f = fixture();
        // Duplicate the dirty series so we have two.
        let data = f.dirty.clone();
        let extra = data.series_at(0).clone();
        let mut data2 =
            Dataset::new(vec!["a", "b"], vec![data.series_at(0).clone(), extra]).unwrap();
        let glitches = vec![f.glitches[0].clone(), f.glitches[0].clone()];
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = paper_strategy(5).clean_filtered(
            &mut data2,
            &glitches,
            &f.ctx,
            &mut rng,
            Some(&[true, false]),
        );
        assert!(outcome.cells_changed() > 0);
        // Series 1 untouched: still has its missing cell and outlier.
        assert!(data2.series_at(1).is_missing(0, 3));
        assert_eq!(data2.series_at(1).get(0, 11), 5000.0);
        // Series 0 cleaned.
        assert!(!data2.series_at(0).is_missing(0, 3));
        let _ = data; // silence unused when not cloned further
    }

    #[test]
    fn clean_patch_matches_in_place_bit_for_bit() {
        let f = fixture();
        for k in 1..=5 {
            let strategy = paper_strategy(k);
            let mut in_place = f.dirty.clone();
            let mut rng_a = StdRng::seed_from_u64(k as u64 * 101);
            let out_a = strategy.clean(&mut in_place, &f.glitches, &f.ctx, &mut rng_a);

            let mut rng_b = StdRng::seed_from_u64(k as u64 * 101);
            let (view, out_b) =
                strategy.clean_patch(&f.dirty, &f.glitches, &f.ctx, &mut rng_b, None);
            assert_eq!(out_a, out_b, "strategy {k} outcome");
            assert!(view.to_dataset().same_data(&in_place), "strategy {k} data");
            // The patch replays to the same dataset as the view.
            assert!(view.patch().apply_to(&f.dirty).same_data(&in_place));
            // A pre-fitted shared model is bit-identical to refitting.
            if strategy.missing_treatment() == MissingTreatment::ModelImpute {
                let fit = ModelFit::fit(&f.dirty, &f.glitches, &f.ctx, None);
                let mut rng_c = StdRng::seed_from_u64(k as u64 * 101);
                let (view_c, out_c) =
                    strategy.clean_patch(&f.dirty, &f.glitches, &f.ctx, &mut rng_c, Some(&fit));
                assert_eq!(out_b, out_c);
                assert!(view_c.to_dataset().same_data(&in_place));
            }
        }
    }

    #[test]
    fn clean_patch_leaves_untouched_series_unmaterialized() {
        let f = fixture();
        // Two series: the dirty one and a clean copy of the ideal one.
        let clean_series = f.ideal.series_at(0).clone();
        let data = Dataset::new(
            vec!["a", "b"],
            vec![f.dirty.series_at(0).clone(), clean_series],
        )
        .unwrap();
        let detector = GlitchDetector::new(
            ConstraintSet::new(vec![sd_glitch::Constraint::NonNegative { attr: 0 }]),
            Some(OutlierDetector::fit(
                &f.ideal,
                &[AttributeTransform::Identity, AttributeTransform::Identity],
                3.0,
            )),
        );
        let glitches = detector.detect_dataset(&data);
        let mut rng = StdRng::seed_from_u64(5);
        let (view, outcome) =
            paper_strategy(5).clean_patch(&data, &glitches, &f.ctx, &mut rng, None);
        assert!(outcome.cells_changed() > 0);
        assert!(view.is_patched(0), "glitched series is rewritten");
        assert!(
            !view.is_patched(1),
            "clean series stays a borrow of the base"
        );
        assert!(view.patch().is_touched(0) && !view.patch().is_touched(1));
    }

    #[test]
    fn ignore_ignore_is_a_no_op() {
        let f = fixture();
        let mut data = f.dirty.clone();
        let mut rng = StdRng::seed_from_u64(1);
        let strategy = CompositeStrategy::new(MissingTreatment::Ignore, OutlierTreatment::Ignore);
        let outcome = strategy.clean(&mut data, &f.glitches, &f.ctx, &mut rng);
        assert_eq!(outcome.cells_changed(), 0);
        assert!(data.same_data(&f.dirty));
        assert_eq!(strategy.name(), "no-op");
        let _ = &f.ideal;
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_glitches_panic() {
        let f = fixture();
        let mut data = f.dirty.clone();
        let mut rng = StdRng::seed_from_u64(1);
        paper_strategy(3).clean(&mut data, &[], &f.ctx, &mut rng);
    }
}
