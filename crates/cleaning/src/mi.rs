use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use sd_linalg::{pairwise_covariance_matrix, CholeskyFactor, Matrix};
use std::fmt;

/// Errors from model-based imputation.
#[derive(Debug, Clone, PartialEq)]
pub enum MiError {
    /// Not enough rows with observed data to estimate the model.
    TooFewRows {
        /// Rows provided.
        got: usize,
    },
    /// Rows with inconsistent dimensions.
    DimensionMismatch,
    /// The covariance could not be factored even after regularization.
    Numerical(String),
}

impl fmt::Display for MiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiError::TooFewRows { got } => {
                write!(f, "too few rows to fit an imputation model ({got})")
            }
            MiError::DimensionMismatch => write!(f, "rows have inconsistent dimensions"),
            MiError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for MiError {}

/// A fitted multivariate-normal model `N(μ, Σ)`.
///
/// The paper's Strategy 1/2 imputer is SAS `PROC MI`, whose default model
/// assumes multivariate normality ("the imputing algorithm … assumes an
/// underlying Gaussian distribution that is not appropriate for this
/// data", Fig. 4). This reproduction fits the same model by
/// expectation-maximization over incomplete rows, then draws each record's
/// missing block from the conditional Gaussian given its observed block.
#[derive(Debug, Clone)]
pub struct MvnModel {
    mean: Vec<f64>,
    cov: Matrix,
    /// Per-missing-pattern conditional solvers, indexed by the bitmask
    /// with bit `a` set when attribute `a` is missing (all `2^v` patterns
    /// are precomputed, so lookup is a direct index).
    patterns: Vec<PatternSolver>,
}

/// Precomputed conditional-Gaussian pieces for one missing pattern.
#[derive(Debug, Clone)]
struct PatternSolver {
    observed: Vec<usize>,
    missing: Vec<usize>,
    /// Gain `K = Σ_MO Σ_OO⁻¹` (|M| × |O|).
    gain: Matrix,
    /// Cholesky factor of the conditional covariance
    /// `Σ_MM − K Σ_OM` (|M| × |M|).
    cond_chol: CholeskyFactor,
}

/// Ridge used when sample covariances are rank-deficient.
const RIDGE: f64 = 1e-9;
/// Maximum regularization doublings.
const RIDGE_TRIES: u32 = 30;

impl MvnModel {
    /// Fits the model to rows that may contain NaN (missing) cells, running
    /// EM until parameters move less than `tol` or `max_iter` is reached.
    ///
    /// Rows that are entirely missing contribute only through the E-step's
    /// prior term, exactly as in the textbook EM for MVN data.
    pub fn fit(rows: &[Vec<f64>], max_iter: usize, tol: f64) -> Result<Self, MiError> {
        let v = rows.first().map(|r| r.len()).unwrap_or(0);
        if rows.iter().any(|r| r.len() != v) {
            return Err(MiError::DimensionMismatch);
        }
        if rows.len() < v + 2 || v == 0 {
            return Err(MiError::TooFewRows { got: rows.len() });
        }

        // Starting estimates: pairwise-complete moments.
        let (mut cov, mut mean) =
            pairwise_covariance_matrix(rows).map_err(|e| MiError::Numerical(e.to_string()))?;

        // One contiguous copy of the rows: the E-step sweeps all rows once
        // per iteration, and chasing per-row heap pointers dominates the
        // sweep on large samples. Same values, same order.
        let mut flat = Vec::with_capacity(rows.len() * v);
        for row in rows {
            flat.extend_from_slice(row);
        }

        let n = rows.len() as f64;
        for _ in 0..max_iter {
            let solvers = build_solvers(&mean, &cov)?;
            // The conditional covariance `L Lᵀ` of each pattern is constant
            // within an iteration — hoist it out of the row loop (the same
            // value is added per matching row, so the accumulated bits are
            // unchanged).
            let mut cond_covs: Vec<Option<Matrix>> = Vec::with_capacity(solvers.len());
            for solver in &solvers {
                cond_covs.push(if solver.missing.is_empty() {
                    None
                } else {
                    Some(
                        solver
                            .cond_chol
                            .l()
                            .mat_mul(&solver.cond_chol.l().transpose())
                            .map_err(|e| MiError::Numerical(e.to_string()))?,
                    )
                });
            }
            // E-step: accumulate E[x] and E[x xᵀ].
            let mut s1 = vec![0.0; v];
            let mut s2 = Matrix::zeros(v, v);
            let mut xhat = vec![0.0; v];
            for row in flat.chunks_exact(v) {
                let pattern = pattern_of(row) as usize;
                let solver = &solvers[pattern];
                conditional_mean(&mean, solver, row, &mut xhat);
                for i in 0..v {
                    s1[i] += xhat[i];
                    for j in i..v {
                        s2[(i, j)] += xhat[i] * xhat[j];
                    }
                }
                // Add conditional covariance on the missing block.
                if let Some(cc) = &cond_covs[pattern] {
                    for (mi, &gi) in solver.missing.iter().enumerate() {
                        for (mj, &gj) in solver.missing.iter().enumerate() {
                            if gj >= gi {
                                s2[(gi, gj)] += cc[(mi, mj)];
                            }
                        }
                    }
                }
            }
            // M-step.
            let new_mean: Vec<f64> = s1.iter().map(|x| x / n).collect();
            let mut new_cov = Matrix::zeros(v, v);
            for i in 0..v {
                for j in i..v {
                    let c = s2[(i, j)] / n - new_mean[i] * new_mean[j];
                    new_cov[(i, j)] = c;
                    new_cov[(j, i)] = c;
                }
            }
            let mean_shift = mean
                .iter()
                .zip(&new_mean)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            let cov_shift = cov
                .max_abs_diff(&new_cov)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            mean = new_mean;
            cov = new_cov;
            if mean_shift < tol && cov_shift < tol {
                break;
            }
        }

        let patterns = build_solvers(&mean, &cov)?;
        Ok(MvnModel {
            mean,
            cov,
            patterns,
        })
    }

    /// The fitted mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The fitted covariance matrix.
    pub fn covariance(&self) -> &Matrix {
        &self.cov
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

/// Model-based imputer: a fitted [`MvnModel`] plus draw policy.
#[derive(Debug, Clone)]
pub struct MvnImputer {
    model: MvnModel,
    /// Whether records with *every* attribute missing get an unconditional
    /// draw. `PROC MI`-style row imputation has nothing to condition on for
    /// such records; leaving them unimputed reproduces the small residual
    /// missing percentage in Table 1 (0.028 %).
    impute_fully_missing: bool,
}

impl MvnImputer {
    /// Fits the imputation model on working-space rows (NaN = to impute).
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self, MiError> {
        Ok(MvnImputer {
            model: MvnModel::fit(rows, 50, 1e-8)?,
            impute_fully_missing: false,
        })
    }

    /// Wraps an already-fitted model.
    pub fn from_model(model: MvnModel) -> Self {
        MvnImputer {
            model,
            impute_fully_missing: false,
        }
    }

    /// Enables unconditional draws for fully-missing records.
    pub fn with_fully_missing_draws(mut self, enabled: bool) -> Self {
        self.impute_fully_missing = enabled;
        self
    }

    /// The fitted model.
    pub fn model(&self) -> &MvnModel {
        &self.model
    }

    /// Imputes the NaN cells of `record` in place with draws from the
    /// conditional Gaussian. Returns the number of cells imputed (0 when
    /// the record is complete, or fully missing and unconditional draws are
    /// disabled).
    pub fn impute_record<R: Rng + ?Sized>(&self, record: &mut [f64], rng: &mut R) -> usize {
        assert_eq!(record.len(), self.model.dim(), "record dimension mismatch");
        let pattern = pattern_of(record);
        if pattern == 0 {
            return 0;
        }
        let full_mask = (1u32 << self.model.dim()) - 1;
        if pattern == full_mask && !self.impute_fully_missing {
            return 0;
        }
        let solver = &self.model.patterns[pattern as usize];
        let mut cond = vec![0.0; self.model.dim()];
        conditional_mean(&self.model.mean, solver, record, &mut cond);
        // Draw z ~ N(0, I), correlate with the conditional Cholesky.
        let z: Vec<f64> = (0..solver.missing.len())
            .map(|_| {
                let s: f64 = StandardNormal.sample(rng);
                s
            })
            .collect();
        let noise = solver.cond_chol.lower_mul(&z);
        for (mi, &attr) in solver.missing.iter().enumerate() {
            record[attr] = cond[attr] + noise[mi];
        }
        solver.missing.len()
    }
}

/// Missing-pattern bitmask of a record (bit set = missing).
fn pattern_of(record: &[f64]) -> u32 {
    let mut mask = 0u32;
    for (a, &x) in record.iter().enumerate() {
        if x.is_nan() {
            mask |= 1 << a;
        }
    }
    mask
}

/// Builds conditional solvers for every possible missing pattern of a
/// `v`-dimensional model (there are `2^v`; `v ≤ 20` guards the blow-up,
/// and the paper's data has `v = 3`), indexed by pattern bitmask.
fn build_solvers(mean: &[f64], cov: &Matrix) -> Result<Vec<PatternSolver>, MiError> {
    let v = mean.len();
    assert!(v <= 20, "pattern enumeration requires small dimensionality");
    let mut map = Vec::with_capacity(1 << v);
    for pattern in 0u32..(1 << v) {
        let missing: Vec<usize> = (0..v).filter(|a| pattern & (1 << a) != 0).collect();
        let observed: Vec<usize> = (0..v).filter(|a| pattern & (1 << a) == 0).collect();
        let solver = if missing.is_empty() {
            PatternSolver {
                observed,
                missing,
                gain: Matrix::zeros(0, 0),
                cond_chol: CholeskyFactor::new(&Matrix::identity(1)).expect("identity factors"),
            }
        } else if observed.is_empty() {
            // Unconditional: gain empty, conditional covariance = Σ.
            let chol = CholeskyFactor::new_regularized(cov, RIDGE, RIDGE_TRIES)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            PatternSolver {
                observed,
                missing,
                gain: Matrix::zeros(v, 0),
                cond_chol: chol,
            }
        } else {
            let sigma_oo = cov
                .select(&observed)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            let sigma_om = cov
                .select_rect(&observed, &missing)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            let sigma_mm = cov
                .select(&missing)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            let chol_oo = CholeskyFactor::new_regularized(&sigma_oo, RIDGE, RIDGE_TRIES)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            // Kᵀ = Σ_OO⁻¹ Σ_OM, solved column by column.
            let mut gain_t = Matrix::zeros(observed.len(), missing.len());
            let mut col = vec![0.0; observed.len()];
            for mj in 0..missing.len() {
                for oi in 0..observed.len() {
                    col[oi] = sigma_om[(oi, mj)];
                }
                let sol = chol_oo
                    .solve(&col)
                    .map_err(|e| MiError::Numerical(e.to_string()))?;
                for oi in 0..observed.len() {
                    gain_t[(oi, mj)] = sol[oi];
                }
            }
            let gain = gain_t.transpose();
            // Conditional covariance Σ_MM − K Σ_OM.
            let k_som = gain
                .mat_mul(&sigma_om)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            let cond_cov = sigma_mm
                .sub(&k_som)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            let cond_chol = CholeskyFactor::new_regularized(&cond_cov, RIDGE, RIDGE_TRIES)
                .map_err(|e| MiError::Numerical(e.to_string()))?;
            PatternSolver {
                observed,
                missing,
                gain,
                cond_chol,
            }
        };
        map.push(solver);
    }
    Ok(map)
}

/// Fills `out` with the conditional mean of `record` under the model:
/// observed cells pass through, missing cells get
/// `μ_M + K (x_O − μ_O)`.
fn conditional_mean(mean: &[f64], solver: &PatternSolver, record: &[f64], out: &mut [f64]) {
    for (a, &x) in record.iter().enumerate() {
        out[a] = if x.is_nan() { mean[a] } else { x };
    }
    if solver.missing.is_empty() || solver.observed.is_empty() {
        return;
    }
    // Alloc-free `μ_M + K (x_O − μ_O)`: accumulates in the same
    // left-to-right order as `Matrix::mat_vec`, so the bits are unchanged.
    for (mi, &attr) in solver.missing.iter().enumerate() {
        let mut adjust = 0.0;
        for (oi, &o) in solver.observed.iter().enumerate() {
            adjust += solver.gain[(mi, oi)] * (record[o] - mean[o]);
        }
        out[attr] = mean[attr] + adjust;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Correlated 3-D Gaussian-ish sample via deterministic construction.
    fn make_rows(n: usize, missing_every: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(99);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let z1: f64 = StandardNormal.sample(&mut rng);
            let z2: f64 = StandardNormal.sample(&mut rng);
            let z3: f64 = StandardNormal.sample(&mut rng);
            let x = 10.0 + 2.0 * z1;
            let y = 5.0 + 1.5 * z1 + 0.5 * z2; // correlated with x
            let w = -3.0 + z3;
            let mut row = vec![x, y, w];
            if missing_every > 0 && i % missing_every == 1 {
                row[1] = f64::NAN;
            }
            if missing_every > 0 && i % missing_every == 3 {
                row[0] = f64::NAN;
                row[2] = f64::NAN;
            }
            rows.push(row);
        }
        rows
    }

    #[test]
    fn em_recovers_moments_on_complete_data() {
        let rows = make_rows(4000, 0);
        let model = MvnModel::fit(&rows, 50, 1e-9).unwrap();
        assert!((model.mean()[0] - 10.0).abs() < 0.2);
        assert!((model.mean()[1] - 5.0).abs() < 0.2);
        assert!((model.mean()[2] + 3.0).abs() < 0.2);
        // Var(x) = 4, Cov(x, y) = 3, Var(y) = 2.5.
        assert!((model.covariance()[(0, 0)] - 4.0).abs() < 0.4);
        assert!((model.covariance()[(0, 1)] - 3.0).abs() < 0.4);
        assert!((model.covariance()[(1, 1)] - 2.5).abs() < 0.4);
    }

    #[test]
    fn em_tolerates_missing_cells() {
        let rows = make_rows(4000, 4); // 25 % rows with a missing y, 25 % with x&w missing
        let model = MvnModel::fit(&rows, 60, 1e-9).unwrap();
        assert!((model.mean()[0] - 10.0).abs() < 0.3);
        assert!((model.covariance()[(0, 1)] - 3.0).abs() < 0.6);
    }

    #[test]
    fn conditional_imputation_exploits_correlation() {
        let rows = make_rows(4000, 0);
        let imputer = MvnImputer::fit(&rows).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // x far above its mean → imputed y should sit above its mean too.
        let mut highs = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut record = vec![14.0, f64::NAN, -3.0];
            let n = imputer.impute_record(&mut record, &mut rng);
            assert_eq!(n, 1);
            assert!(!record[1].is_nan());
            if record[1] > 5.0 {
                highs += 1;
            }
        }
        assert!(
            highs > trials * 3 / 4,
            "conditional mean should shift up: {highs}"
        );
    }

    #[test]
    fn fully_missing_records_are_skipped_by_default() {
        let rows = make_rows(500, 0);
        let imputer = MvnImputer::fit(&rows).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut record = vec![f64::NAN, f64::NAN, f64::NAN];
        assert_eq!(imputer.impute_record(&mut record, &mut rng), 0);
        assert!(record.iter().all(|x| x.is_nan()));

        let imputer = imputer.with_fully_missing_draws(true);
        assert_eq!(imputer.impute_record(&mut record, &mut rng), 3);
        assert!(record.iter().all(|x| !x.is_nan()));
    }

    #[test]
    fn complete_records_are_untouched() {
        let rows = make_rows(500, 0);
        let imputer = MvnImputer::fit(&rows).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut record = vec![1.0, 2.0, 3.0];
        assert_eq!(imputer.impute_record(&mut record, &mut rng), 0);
        assert_eq!(record, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn gaussian_model_imputes_out_of_domain_on_skewed_data() {
        // Heavily right-skewed positive attribute alongside a correlate:
        // the Gaussian fit has a large σ, so conditional draws go negative
        // — the paper's central failure mode.
        let mut rng = StdRng::seed_from_u64(77);
        let mut rows = Vec::new();
        for _ in 0..3000 {
            let z: f64 = StandardNormal.sample(&mut rng);
            let load = (1.0 + 1.3 * z).exp(); // lognormal, very skewed
            let other: f64 = StandardNormal.sample(&mut rng);
            rows.push(vec![load, other]);
        }
        let imputer = MvnImputer::fit(&rows).unwrap();
        let mut negatives = 0;
        for _ in 0..500 {
            let mut record = vec![f64::NAN, 0.0];
            imputer.impute_record(&mut record, &mut rng);
            if record[0] < 0.0 {
                negatives += 1;
            }
        }
        assert!(
            negatives > 25,
            "Gaussian imputation should emit negative draws on skewed data, got {negatives}"
        );
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        assert!(matches!(
            MvnModel::fit(&[], 10, 1e-6),
            Err(MiError::TooFewRows { .. })
        ));
        assert!(matches!(
            MvnModel::fit(&[vec![1.0], vec![1.0, 2.0]], 10, 1e-6),
            Err(MiError::DimensionMismatch)
        ));
        let too_few = vec![vec![1.0, 2.0, 3.0]];
        assert!(MvnModel::fit(&too_few, 10, 1e-6).is_err());
    }

    #[test]
    fn imputation_is_deterministic_per_rng_seed() {
        let rows = make_rows(1000, 0);
        let imputer = MvnImputer::fit(&rows).unwrap();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let mut a = vec![12.0, f64::NAN, f64::NAN];
        let mut b = vec![12.0, f64::NAN, f64::NAN];
        imputer.impute_record(&mut a, &mut r1);
        imputer.impute_record(&mut b, &mut r2);
        assert_eq!(a, b);
    }
}
