use sd_data::Dataset;
use sd_glitch::OutlierDetector;
use sd_stats::{AttributeTransform, Summary};

/// Per-replication cleaning context: everything the primitives calibrate
/// on the **ideal sample** `D^i_I` (§2.1.2).
///
/// The paper computes winsorization limits and replacement means from the
/// ideal data of the *same replication*, which is what gives Figure 4 its
/// horizontal banding — the 3-σ limits vary between experimental runs with
/// the ideal sample.
#[derive(Debug, Clone)]
pub struct CleaningContext {
    transforms: Vec<AttributeTransform>,
    /// Per-attribute `(lo, hi)` winsorization limits in working space.
    limits: Vec<(f64, f64)>,
    /// Per-attribute ideal means in working space.
    ideal_means: Vec<f64>,
}

impl CleaningContext {
    /// Calibrates a context from an ideal sample: `k`-σ limits and means of
    /// every attribute, in the working space of the matching transform.
    pub fn fit(ideal: &Dataset, transforms: &[AttributeTransform], k: f64) -> Self {
        assert_eq!(
            transforms.len(),
            ideal.num_attributes(),
            "one transform per attribute"
        );
        let mut limits = Vec::with_capacity(transforms.len());
        let mut ideal_means = Vec::with_capacity(transforms.len());
        for (attr, tf) in transforms.iter().enumerate() {
            let mut values = ideal.pooled_attribute(attr);
            tf.forward_slice(&mut values);
            let s = Summary::from_slice(&values);
            if s.is_empty() {
                limits.push((f64::NEG_INFINITY, f64::INFINITY));
                ideal_means.push(0.0);
            } else {
                limits.push(s.sigma_limits(k));
                ideal_means.push(s.mean);
            }
        }
        CleaningContext {
            transforms: transforms.to_vec(),
            limits,
            ideal_means,
        }
    }

    /// Builds a context that shares its limits with a fitted outlier
    /// detector (guaranteeing detector and winsorizer agree on what is
    /// acceptable), taking means from the ideal sample.
    pub fn from_detector(
        ideal: &Dataset,
        transforms: &[AttributeTransform],
        detector: &OutlierDetector,
    ) -> Self {
        let mut ctx = CleaningContext::fit(ideal, transforms, detector.k());
        ctx.limits = detector.limits().to_vec();
        ctx
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.transforms.len()
    }

    /// Per-attribute transforms.
    pub fn transforms(&self) -> &[AttributeTransform] {
        &self.transforms
    }

    /// Per-attribute winsorization limits in working space.
    pub fn limits(&self) -> &[(f64, f64)] {
        &self.limits
    }

    /// Per-attribute ideal means in working space.
    pub fn ideal_means(&self) -> &[f64] {
        &self.ideal_means
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_data::{NodeId, TimeSeries};

    fn ideal() -> Dataset {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 0), 2, 10);
        for t in 0..10 {
            s.set(0, t, 100.0 + t as f64);
            s.set(1, t, 0.9);
        }
        Dataset::new(vec!["load", "ratio"], vec![s]).unwrap()
    }

    #[test]
    fn fit_produces_limits_and_means() {
        let ctx = CleaningContext::fit(
            &ideal(),
            &[AttributeTransform::Identity, AttributeTransform::Identity],
            3.0,
        );
        assert_eq!(ctx.num_attributes(), 2);
        let (lo, hi) = ctx.limits()[0];
        assert!(lo < 100.0 && hi > 109.0);
        assert!((ctx.ideal_means()[0] - 104.5).abs() < 1e-12);
        assert!((ctx.ideal_means()[1] - 0.9).abs() < 1e-12);
        // Constant attribute: zero σ, limits collapse to the mean.
        let (rlo, rhi) = ctx.limits()[1];
        assert!((rlo - 0.9).abs() < 1e-12 && (rhi - 0.9).abs() < 1e-12);
    }

    #[test]
    fn log_transform_changes_working_space() {
        let raw = CleaningContext::fit(
            &ideal(),
            &[AttributeTransform::Identity, AttributeTransform::Identity],
            3.0,
        );
        let log = CleaningContext::fit(
            &ideal(),
            &[AttributeTransform::log(), AttributeTransform::Identity],
            3.0,
        );
        assert!((log.ideal_means()[0] - raw.ideal_means()[0].ln()).abs() < 0.01);
    }

    #[test]
    fn from_detector_shares_limits() {
        let ds = ideal();
        let tf = [AttributeTransform::Identity, AttributeTransform::Identity];
        let det = OutlierDetector::fit(&ds, &tf, 3.0);
        let ctx = CleaningContext::from_detector(&ds, &tf, &det);
        assert_eq!(ctx.limits(), det.limits());
    }

    #[test]
    fn empty_ideal_attribute_gets_open_limits() {
        let s = TimeSeries::new(NodeId::new(0, 0, 0), 1, 5); // all missing
        let ds = Dataset::new(vec!["a"], vec![s]).unwrap();
        let ctx = CleaningContext::fit(&ds, &[AttributeTransform::Identity], 3.0);
        assert_eq!(ctx.limits()[0], (f64::NEG_INFINITY, f64::INFINITY));
    }
}
