//! Criterion micro-benchmarks for the EMD engine: exact 1-D closed form,
//! transportation simplex, min-cost flow, Sinkhorn, and the end-to-end
//! grid pipeline, swept over signature sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_emd::{
    emd_1d_samples, ground_distance_matrix, sinkhorn, MinCostFlow, SinkhornParams, TransportProblem,
};
use std::hint::black_box;

/// Deterministic pseudo-random stream.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    }
}

fn instance(n: usize, m: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut next = lcg(seed);
    let mut supply: Vec<f64> = (0..n).map(|_| 0.05 + next()).collect();
    let mut demand: Vec<f64> = (0..m).map(|_| 0.05 + next()).collect();
    let st: f64 = supply.iter().sum();
    let dt: f64 = demand.iter().sum();
    supply.iter_mut().for_each(|x| *x /= st);
    demand.iter_mut().for_each(|x| *x /= dt);
    let cost: Vec<f64> = (0..n * m).map(|_| next() * 10.0).collect();
    (supply, demand, cost)
}

fn bench_emd_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_1d_samples");
    for size in [100usize, 1_000, 10_000] {
        let mut next = lcg(7);
        let a: Vec<f64> = (0..size).map(|_| next() * 100.0).collect();
        let b: Vec<f64> = (0..size).map(|_| next() * 100.0 + 5.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| emd_1d_samples(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_solvers");
    for size in [16usize, 64, 128] {
        let (s, d, cost) = instance(size, size, 11);
        group.bench_with_input(BenchmarkId::new("simplex", size), &size, |bench, _| {
            bench.iter(|| {
                TransportProblem::new(s.clone(), d.clone(), cost.clone())
                    .unwrap()
                    .solve()
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("flow", size), &size, |bench, _| {
            bench.iter(|| {
                MinCostFlow::new(s.clone(), d.clone(), cost.clone())
                    .unwrap()
                    .solve()
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("sinkhorn", size), &size, |bench, _| {
            bench.iter(|| {
                sinkhorn(
                    black_box(&s),
                    black_box(&d),
                    black_box(&cost),
                    SinkhornParams {
                        regularization: 0.1,
                        max_iterations: 50_000,
                        tolerance: 1e-6,
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_grid_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_emd");
    for points in [1_000usize, 10_000] {
        let mut next = lcg(13);
        let a: Vec<Vec<f64>> = (0..points)
            .map(|_| vec![next() * 100.0, next() * 10.0, next()])
            .collect();
        let b: Vec<Vec<f64>> = (0..points)
            .map(|_| vec![next() * 100.0 + 10.0, next() * 10.0, next()])
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |bench, _| {
            bench.iter(|| {
                sd_emd::GridEmd::new(6)
                    .distance(black_box(&a), black_box(&b))
                    .unwrap()
                    .emd
            });
        });
    }
    group.finish();
}

fn bench_cost_matrix(c: &mut Criterion) {
    let mut next = lcg(17);
    let a: Vec<Vec<f64>> = (0..256).map(|_| vec![next(), next(), next()]).collect();
    let b: Vec<Vec<f64>> = (0..256).map(|_| vec![next(), next(), next()]).collect();
    c.bench_function("ground_distance_matrix_256x256", |bench| {
        bench.iter(|| ground_distance_matrix(black_box(&a), black_box(&b)));
    });
}

criterion_group!(
    benches,
    bench_emd_1d,
    bench_solvers,
    bench_grid_pipeline,
    bench_cost_matrix
);
criterion_main!(benches);
