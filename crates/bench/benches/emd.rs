//! Criterion micro-benchmarks for the EMD engine: exact 1-D closed form,
//! transportation simplex, min-cost flow, Sinkhorn, and the end-to-end
//! grid pipeline, swept over signature sizes.
//!
//! The simplex/flow solvers consume their inputs, so those benches use
//! `iter_batched`: the supply/demand/cost clones happen in the setup
//! closure, outside the measured region, and the reported µs/iter is
//! solver time only.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use sd_bench::synth::{grid_cloud_pair, lcg, transport_instance};
use sd_emd::{emd_1d_samples, ground_distance_matrix, sinkhorn, MinCostFlow, SinkhornParams};
use std::hint::black_box;

fn bench_emd_1d(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_1d_samples");
    for size in [100usize, 1_000, 10_000] {
        let mut next = lcg(7);
        let a: Vec<f64> = (0..size).map(|_| next() * 100.0).collect();
        let b: Vec<f64> = (0..size).map(|_| next() * 100.0 + 5.0).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| emd_1d_samples(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_solvers");
    for size in [16usize, 64, 128] {
        let (s, d, cost) = transport_instance(size, size, 11);
        group.bench_with_input(BenchmarkId::new("simplex", size), &size, |bench, _| {
            bench.iter_batched(
                || (s.clone(), d.clone(), cost.clone()),
                |(s, d, cost)| {
                    sd_emd::TransportProblem::new(s, d, cost)
                        .unwrap()
                        .solve()
                        .unwrap()
                },
                BatchSize::LargeInput,
            );
        });
        // Test-only cross-validator (see `sd_emd::MinCostFlow`, ~23×
        // slower than the simplex at n = 128); benched to keep that gap
        // on the record.
        group.bench_with_input(BenchmarkId::new("flow", size), &size, |bench, _| {
            bench.iter_batched(
                || (s.clone(), d.clone(), cost.clone()),
                |(s, d, cost)| MinCostFlow::new(s, d, cost).unwrap().solve().unwrap(),
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("sinkhorn", size), &size, |bench, _| {
            bench.iter(|| {
                sinkhorn(
                    black_box(&s),
                    black_box(&d),
                    black_box(&cost),
                    SinkhornParams {
                        regularization: 0.1,
                        max_iterations: 50_000,
                        tolerance: 1e-6,
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_grid_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_emd");
    for points in [1_000usize, 10_000] {
        // Single-stream pair with pinned seeding (see `grid_cloud_pair`),
        // so the grid row stays like-for-like PR-over-PR.
        let (a, b) = grid_cloud_pair(points, 13, 10.0);
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |bench, _| {
            bench.iter(|| {
                sd_emd::GridEmd::new(6)
                    .distance(black_box(&a), black_box(&b))
                    .unwrap()
                    .emd
            });
        });
    }
    group.finish();
}

fn bench_cost_matrix(c: &mut Criterion) {
    let mut next = lcg(17);
    let a: Vec<Vec<f64>> = (0..256).map(|_| vec![next(), next(), next()]).collect();
    let b: Vec<Vec<f64>> = (0..256).map(|_| vec![next(), next(), next()]).collect();
    c.bench_function("ground_distance_matrix_256x256", |bench| {
        bench.iter(|| ground_distance_matrix(black_box(&a), black_box(&b)));
    });
}

criterion_group!(
    benches,
    bench_emd_1d,
    bench_solvers,
    bench_grid_pipeline,
    bench_cost_matrix
);
criterion_main!(benches);
