//! Criterion benchmarks for the sampling substrate: replication pairs,
//! weighted alias sampling, bottom-k sketches, priority and reservoir
//! samplers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_netsim::{generate, NetsimConfig};
use sd_sampling::{
    BottomKSketch, PrioritySampler, ReplicationSampler, ReservoirSampler, WeightedSampler,
};
use std::hint::black_box;

fn bench_replication(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(3)).dataset;
    let mut group = c.benchmark_group("replication_sample_pair");
    for b in [20usize, 100] {
        let sampler = ReplicationSampler::new(b, 7);
        group.bench_with_input(BenchmarkId::from_parameter(b), &b, |bench, _| {
            let mut i = 0usize;
            bench.iter(|| {
                i += 1;
                sampler.sample_pair(black_box(&data), black_box(&data), i)
            });
        });
    }
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let weights: Vec<f64> = (0..10_000).map(|i| 1.0 + (i % 13) as f64).collect();
    c.bench_function("alias_table_build_10k", |bench| {
        bench.iter(|| WeightedSampler::new(black_box(&weights)));
    });
    let sampler = WeightedSampler::new(&weights);
    c.bench_function("alias_draw", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| sampler.sample(&mut rng));
    });
}

fn bench_sketches(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_sketches_100k_items");
    group.bench_function("bottom_k_256", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut sketch = BottomKSketch::new(256);
            for i in 0..100_000u64 {
                sketch.offer(i, 1.0 + (i % 7) as f64, &mut rng);
            }
            sketch.estimate_subset_sum(|&i| i % 2 == 0)
        });
    });
    group.bench_function("priority_256", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut sampler = PrioritySampler::new(256);
            for i in 0..100_000u64 {
                sampler.offer(i, 1.0 + (i % 7) as f64, &mut rng);
            }
            sampler.estimate_subset_sum(|&i| i % 2 == 0)
        });
    });
    group.bench_function("reservoir_256", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            let mut sampler = ReservoirSampler::new(256);
            for i in 0..100_000u64 {
                sampler.offer(i, &mut rng);
            }
            sampler.sample().len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_replication, bench_weighted, bench_sketches);
criterion_main!(benches);
