//! Criterion benchmarks for glitch detection throughput: the three
//! detectors over generated telemetry, plus glitch-index scoring and
//! ideal-partition identification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_core::partition_ideal;
use sd_glitch::{ConstraintSet, GlitchDetector, GlitchIndex, GlitchWeights, OutlierDetector};
use sd_netsim::{generate, NetsimConfig};
use sd_stats::AttributeTransform;
use std::hint::black_box;

fn transforms() -> Vec<AttributeTransform> {
    vec![
        AttributeTransform::log(),
        AttributeTransform::Identity,
        AttributeTransform::Identity,
    ]
}

fn bench_detection(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(3)).dataset;
    let constraints = ConstraintSet::paper_rules(0, 2);
    let tf = transforms();
    let partition = partition_ideal(&data, &constraints, &tf, 3.0, 0.05).unwrap();
    let ideal = partition.ideal_dataset(&data);
    let detector = GlitchDetector::new(
        constraints.clone(),
        Some(OutlierDetector::fit(&ideal, &tf, 3.0)),
    );
    let mut group = c.benchmark_group("detect_dataset");
    for series in [10usize, 50, 100] {
        let subset = data.subset(&(0..series).collect::<Vec<_>>());
        group.bench_with_input(BenchmarkId::from_parameter(series), &series, |bench, _| {
            bench.iter(|| detector.detect_dataset(black_box(&subset)));
        });
    }
    group.finish();

    let record = [100.0, 20.0, f64::NAN];
    c.bench_function("constraint_violations_per_record", |bench| {
        bench.iter(|| constraints.violations(black_box(&record)));
    });
}

fn bench_scoring(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(5)).dataset;
    let constraints = ConstraintSet::paper_rules(0, 2);
    let tf = transforms();
    let partition = partition_ideal(&data, &constraints, &tf, 3.0, 0.05).unwrap();
    let ideal = partition.ideal_dataset(&data);
    let detector = GlitchDetector::new(constraints, Some(OutlierDetector::fit(&ideal, &tf, 3.0)));
    let matrices = detector.detect_dataset(&data);
    let index = GlitchIndex::new(GlitchWeights::paper());
    c.bench_function("glitch_index_100_series", |bench| {
        bench.iter(|| index.dataset_score(black_box(&matrices)));
    });
    c.bench_function("rank_dirtiest_100_series", |bench| {
        bench.iter(|| index.rank_dirtiest(black_box(&matrices)));
    });
}

fn bench_partition(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(7)).dataset;
    let constraints = ConstraintSet::paper_rules(0, 2);
    let tf = transforms();
    c.bench_function("partition_ideal_100_series", |bench| {
        bench.iter(|| partition_ideal(black_box(&data), &constraints, &tf, 3.0, 0.05).unwrap());
    });
}

criterion_group!(benches, bench_detection, bench_scoring, bench_partition);
criterion_main!(benches);
