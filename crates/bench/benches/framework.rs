//! Criterion benchmarks for the end-to-end framework: one full replication
//! evaluation (sample → detect → clean → re-detect → distortion) per
//! strategy, and the distortion computation alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_cleaning::paper_strategy;
use sd_core::{statistical_distortion, DistortionMetric, Experiment, ExperimentConfig};
use sd_netsim::{generate, NetsimConfig};
use sd_stats::AttributeTransform;
use std::hint::black_box;

fn bench_replication_evaluation(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(3)).dataset;
    let mut config = ExperimentConfig::paper_default(25, 5);
    config.replications = 1;
    let prepared = Experiment::new(config).prepare(&data).unwrap();
    let artifacts = prepared.replication(0);

    let mut group = c.benchmark_group("evaluate_strategy_25_series");
    group.sample_size(20);
    for k in [1u32, 3, 4] {
        let strategy = paper_strategy(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                prepared
                    .evaluate(black_box(&artifacts), &strategy, k as usize)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_distortion_metrics(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(9)).dataset;
    let dirty = data.subset(&(0..40).collect::<Vec<_>>());
    let mut cleaned = dirty.clone();
    // Perturb: clamp the load attribute.
    for s in cleaned.series_mut() {
        s.map_attribute_in_place(0, |x| x.min(500.0));
    }
    let tf = vec![AttributeTransform::Identity; 3];

    let mut group = c.benchmark_group("statistical_distortion_40_series");
    group.sample_size(20);
    for (label, metric) in [
        ("emd6", DistortionMetric::paper_default()),
        ("kl6", DistortionMetric::KlDivergence { bins: 6 }),
        ("mahalanobis", DistortionMetric::Mahalanobis),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                statistical_distortion(black_box(&dirty), black_box(&cleaned), &tf, metric).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim_generate");
    group.sample_size(10);
    group.bench_function("100_series_x60", |bench| {
        bench.iter(|| generate(black_box(&NetsimConfig::small(11))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_replication_evaluation,
    bench_distortion_metrics,
    bench_generation
);
criterion_main!(benches);
