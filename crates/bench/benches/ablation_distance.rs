//! Ablation: the choice of distortion distance (Definition 1 names EMD,
//! KL divergence, and Mahalanobis). This bench measures both *cost* and —
//! via stderr output — *discrimination*: how each metric separates a
//! distribution-preserving repair from a distribution-destroying one.

use criterion::{criterion_group, criterion_main, Criterion};
use sd_core::{statistical_distortion, DistortionMetric};
use sd_data::Dataset;
use sd_emd::DistanceScaling;
use sd_netsim::{generate, NetsimConfig};
use sd_stats::AttributeTransform;
use std::hint::black_box;

/// A repair that preserves shape: clamps only the top 0.1 % of loads.
fn gentle_repair(data: &Dataset) -> Dataset {
    let mut out = data.clone();
    let pooled = data.pooled_attribute(0);
    let cap = sd_stats::quantile(&pooled, 0.999).unwrap_or(f64::INFINITY);
    for s in out.series_mut() {
        s.map_attribute_in_place(0, |x| x.min(cap));
    }
    out
}

/// A repair that destroys shape: every load becomes the global mean.
fn destructive_repair(data: &Dataset) -> Dataset {
    let mut out = data.clone();
    let pooled = data.pooled_attribute(0);
    let mean = pooled.iter().sum::<f64>() / pooled.len().max(1) as f64;
    for s in out.series_mut() {
        s.map_attribute_in_place(0, |_| mean);
    }
    out
}

fn metrics() -> Vec<(&'static str, DistortionMetric)> {
    vec![
        (
            "emd_bins6",
            DistortionMetric::Emd {
                bins: 6,
                scaling: DistanceScaling::Normalized,
            },
        ),
        (
            "emd_bins10",
            DistortionMetric::Emd {
                bins: 10,
                scaling: DistanceScaling::Normalized,
            },
        ),
        ("kl_bins6", DistortionMetric::KlDivergence { bins: 6 }),
        ("mahalanobis", DistortionMetric::Mahalanobis),
        ("ks", DistortionMetric::KolmogorovSmirnov),
        ("cvm", DistortionMetric::CramerVonMises),
        ("energy_bins6", DistortionMetric::Energy { bins: 6 }),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(21)).dataset;
    let dirty = data.subset(&(0..50).collect::<Vec<_>>());
    let gentle = gentle_repair(&dirty);
    let destructive = destructive_repair(&dirty);
    let tf = vec![AttributeTransform::Identity; 3];

    // Report discrimination ratios once, outside the timing loops.
    eprintln!("\n== distortion-metric discrimination (destructive / gentle) ==");
    for (label, metric) in metrics() {
        let d_gentle = statistical_distortion(&dirty, &gentle, &tf, metric).unwrap();
        let d_destr = statistical_distortion(&dirty, &destructive, &tf, metric).unwrap();
        let ratio = if d_gentle > 0.0 {
            d_destr / d_gentle
        } else {
            f64::INFINITY
        };
        eprintln!("{label:<12} gentle {d_gentle:.5}  destructive {d_destr:.5}  ratio {ratio:.1}");
    }

    let mut group = c.benchmark_group("distortion_metric_cost");
    group.sample_size(20);
    for (label, metric) in metrics() {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                statistical_distortion(black_box(&dirty), black_box(&gentle), &tf, metric).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
