//! Criterion benchmarks for the cleaning strategies: per-strategy cost on
//! one replication sample, plus the EM imputation-model fit alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sd_cleaning::{paper_strategy, CleaningStrategy, MvnImputer};
use sd_core::{Experiment, ExperimentConfig};
use sd_netsim::{generate, NetsimConfig};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let data = generate(&NetsimConfig::small(3)).dataset;
    let mut config = ExperimentConfig::paper_default(30, 5);
    config.replications = 1;
    let prepared = Experiment::new(config.clone()).prepare(&data).unwrap();
    let artifacts = prepared.replication(0);

    let mut group = c.benchmark_group("strategy_clean_30_series");
    for k in 1..=5u32 {
        let strategy = paper_strategy(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                let mut cleaned = artifacts.dirty.clone();
                let mut rng = StdRng::seed_from_u64(9);
                strategy.clean(
                    black_box(&mut cleaned),
                    &artifacts.dirty_matrices,
                    &artifacts.context,
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

fn bench_em_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvn_imputer_fit");
    for rows in [1_000usize, 5_000] {
        // Correlated rows with a 20 % missing pattern.
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|i| {
                let x = (i as f64 * 0.37).sin() * 10.0 + 50.0;
                let y = 0.5 * x + (i as f64 * 0.11).cos();
                let z = if i % 5 == 0 {
                    f64::NAN
                } else {
                    0.9 + 0.01 * (i % 7) as f64
                };
                vec![x, y, z]
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |bench, _| {
            bench.iter(|| MvnImputer::fit(black_box(&data)).unwrap());
        });
    }
    group.finish();
}

fn bench_impute_throughput(c: &mut Criterion) {
    let data: Vec<Vec<f64>> = (0..2_000)
        .map(|i| {
            let x = (i as f64 * 0.37).sin() * 10.0 + 50.0;
            vec![x, 0.5 * x, 0.9]
        })
        .collect();
    let imputer = MvnImputer::fit(&data).unwrap();
    c.bench_function("impute_record", |bench| {
        let mut rng = StdRng::seed_from_u64(4);
        bench.iter(|| {
            let mut record = [f64::NAN, 25.0, f64::NAN];
            imputer.impute_record(black_box(&mut record), &mut rng)
        });
    });
}

criterion_group!(
    benches,
    bench_strategies,
    bench_em_fit,
    bench_impute_throughput
);
criterion_main!(benches);
