//! Shared plumbing for the reproduction harness binaries.
//!
//! Every table/figure binary reads the same environment knobs so the whole
//! evaluation can be scaled from CI-sized smoke runs to the paper's full
//! 20 000-series configuration:
//!
//! | Variable           | Meaning                                  | Default   |
//! |--------------------|------------------------------------------|-----------|
//! | `SD_SCALE`         | `small` / `harness` / `paper` data scale | `harness` |
//! | `SD_REPLICATIONS`  | replications `R`                         | `50`      |
//! | `SD_SEED`          | base RNG seed                            | `42`      |
//! | `SD_THREADS`       | worker threads (0 = auto)                | `0`       |
//! | `SD_SHARDS`        | streaming-service ingestion shards       | `4`       |
//! | `SD_NODES`         | streaming node-count override (0 = scale default) | `0` |
//! | `SD_EVALUATORS`    | streaming evaluator-pool size            | `4`       |
//! | `SD_OUT`           | directory for JSON artifacts (optional)  | unset     |
//!
//! Binaries print human-readable rows (the same rows/series the paper
//! reports) to stdout and, when `SD_OUT` is set, write machine-readable
//! JSON next to them so `EXPERIMENTS.md` numbers are regenerable.

#![forbid(unsafe_code)]
use sd_data::{Dataset, Topology};
use sd_netsim::{generate, NetsimConfig};
use std::path::PathBuf;

/// Data-generation scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 100 sectors × 60 steps — smoke tests.
    Small,
    /// 1 000 sectors × 170 steps — default harness runs.
    Harness,
    /// 20 000 sectors × 170 steps — the paper's full scale.
    Paper,
}

impl Scale {
    /// The netsim configuration for this scale.
    pub fn netsim_config(self, seed: u64) -> NetsimConfig {
        match self {
            Scale::Small => NetsimConfig::small(seed),
            Scale::Harness => NetsimConfig::harness_scale(seed),
            Scale::Paper => NetsimConfig::paper_scale(seed),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Harness => "harness",
            Scale::Paper => "paper",
        }
    }
}

/// Common harness configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Data scale.
    pub scale: Scale,
    /// Replications `R`.
    pub replications: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Ingestion shards for the streaming-service rows.
    pub shards: usize,
    /// Streaming node-count override: when nonzero, streaming rows are
    /// drawn from a topology resized to approximately this many sectors
    /// (see [`HarnessConfig::streaming_netsim_config`]) instead of the
    /// scale's default — the 10⁴–10⁵-node serving regime.
    pub nodes: usize,
    /// Evaluator-pool size for the pipelined streaming rows.
    pub evaluators: usize,
    /// Optional JSON artifact directory.
    pub out_dir: Option<PathBuf>,
}

impl HarnessConfig {
    /// Reads the environment (see the module docs for the knobs).
    pub fn from_env() -> Self {
        let scale = match std::env::var("SD_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("paper") => Scale::Paper,
            _ => Scale::Harness,
        };
        let parse_usize = |name: &str, default: usize| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let seed = std::env::var("SD_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(42);
        HarnessConfig {
            scale,
            replications: parse_usize("SD_REPLICATIONS", 50),
            seed,
            threads: parse_usize("SD_THREADS", 0),
            shards: parse_usize("SD_SHARDS", 4),
            nodes: parse_usize("SD_NODES", 0),
            evaluators: parse_usize("SD_EVALUATORS", 4),
            out_dir: std::env::var("SD_OUT").ok().map(PathBuf::from),
        }
    }

    /// Generates the telemetry data set for this configuration and prints
    /// a provenance banner.
    pub fn generate_data(&self) -> Dataset {
        let config = self.scale.netsim_config(self.seed);
        eprintln!(
            "# scale={} series={} len={} seed={} replications={}",
            self.scale.label(),
            config.num_series(),
            config.series_len,
            self.seed,
            self.replications,
        );
        generate(&config).dataset
    }

    /// The netsim configuration the streaming rows are drawn from: the
    /// scale's default, unless `SD_NODES` asks for a specific serving
    /// fleet size. An override resizes the topology to at least `nodes`
    /// sectors (5 sectors per tower, up to 50 towers per RNC — the
    /// serving-regime shape) and bounds the horizon at 60 steps so
    /// 10⁴–10⁵-node runs scale in nodes, not in rows per node.
    pub fn streaming_netsim_config(&self) -> NetsimConfig {
        let mut config = self.scale.netsim_config(self.seed);
        if self.nodes > 0 {
            let sectors_per_tower = 5u32;
            let towers = self.nodes.div_ceil(sectors_per_tower as usize).max(1) as u32;
            let rncs = towers.div_ceil(50).max(1);
            let towers_per_rnc = towers.div_ceil(rncs);
            config.topology = Topology::new(rncs, towers_per_rnc, sectors_per_tower);
            config.series_len = config.series_len.min(60);
        }
        config
    }

    /// Writes a JSON artifact when `SD_OUT` is configured.
    pub fn write_json(&self, name: &str, value: &serde_json::Value) {
        let Some(dir) = &self.out_dir else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(name);
        match serde_json::to_string_pretty(value) {
            Ok(body) => {
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("warning: cannot write {}: {e}", path.display());
                } else {
                    eprintln!("# wrote {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
        }
    }
}

/// Deterministic synthetic inputs shared by the criterion benches and the
/// `perf` bin, so both measure the same instances and their numbers stay
/// comparable PR-over-PR.
pub mod synth {
    /// Deterministic pseudo-random stream (an LCG; no external RNG so the
    /// benches stay independent of the vendored `rand` shim's bit stream).
    pub fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        }
    }

    /// A random balanced `n × m` transportation instance: unit-mass
    /// supply/demand vectors and costs in `[0, 10)`.
    pub fn transport_instance(n: usize, m: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut next = lcg(seed);
        let mut supply: Vec<f64> = (0..n).map(|_| 0.05 + next()).collect();
        let mut demand: Vec<f64> = (0..m).map(|_| 0.05 + next()).collect();
        let st: f64 = supply.iter().sum();
        let dt: f64 = demand.iter().sum();
        supply.iter_mut().for_each(|x| *x /= st);
        demand.iter_mut().for_each(|x| *x /= dt);
        let cost: Vec<f64> = (0..n * m).map(|_| next() * 10.0).collect();
        (supply, demand, cost)
    }

    /// A random 3-attribute point cloud for the grid pipeline, shifted by
    /// `offset` on the first axis.
    pub fn grid_cloud(points: usize, seed: u64, offset: f64) -> Vec<Vec<f64>> {
        let mut next = lcg(seed);
        (0..points)
            .map(|_| vec![next() * 100.0 + offset, next() * 10.0, next()])
            .collect()
    }

    /// The canonical grid-pipeline instance: both clouds drawn from **one**
    /// LCG stream seeded with `seed` (the second cloud continues where the
    /// first stopped, then shifts by `offset` on the first axis).
    ///
    /// Pinned so the `grid` perf row is like-for-like PR-over-PR: PR 1
    /// continued the stream while PR 2 briefly drew the second cloud from
    /// an independent seed, which made the PR1→PR2 grid delta noise.
    pub fn grid_cloud_pair(
        points: usize,
        seed: u64,
        offset: f64,
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut next = lcg(seed);
        let mut cloud = |shift: f64| -> Vec<Vec<f64>> {
            (0..points)
                .map(|_| vec![next() * 100.0 + shift, next() * 10.0, next()])
                .collect()
        };
        let a = cloud(0.0);
        let b = cloud(offset);
        (a, b)
    }
}

/// Mean and sample standard deviation of a slice (0 std for n < 2).
pub fn mean_sd(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Prints a PASS/FAIL shape-check line (the qualitative targets from the
/// paper that the reproduction must preserve).
pub fn shape_check(label: &str, ok: bool) {
    println!(
        "shape-check: {label} … {}",
        if ok { "PASS" } else { "FAIL" }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sd_of_known_sample() {
        let (m, s) = mean_sd(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        let (m1, s1) = mean_sd(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
        assert!(mean_sd(&[]).0.is_nan());
    }

    #[test]
    fn scale_labels() {
        assert_eq!(Scale::Small.label(), "small");
        assert_eq!(Scale::Paper.netsim_config(1).num_series(), 20_000);
    }

    #[test]
    fn node_override_resizes_streaming_topology() {
        let mut harness = HarnessConfig {
            scale: Scale::Harness,
            replications: 1,
            seed: 7,
            threads: 0,
            shards: 4,
            nodes: 0,
            evaluators: 4,
            out_dir: None,
        };
        // No override: the scale's default shape, untouched horizon.
        let base = harness.streaming_netsim_config();
        assert_eq!(base.num_series(), 1_000);
        assert_eq!(base.series_len, 170);
        // Override: at least the requested sectors, bounded horizon.
        for nodes in [100, 10_000, 100_000] {
            harness.nodes = nodes;
            let sized = harness.streaming_netsim_config();
            assert!(sized.num_series() >= nodes);
            assert!(sized.num_series() < nodes + 300);
            assert_eq!(sized.series_len, 60);
            assert_eq!(sized.seed, 7);
        }
    }
}
