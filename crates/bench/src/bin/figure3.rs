//! Figure 3 reproduction: time series of glitch counts (missing,
//! inconsistent, outliers) aggregated across replications and samples —
//! "roughly 5000 data points at any given time" for R = 50, B = 100.
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin figure3
//! ```

use sd_bench::{mean_sd, shape_check, HarnessConfig};
use sd_core::{figure3_series, ExperimentConfig};
use sd_stats::pearson;

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let mut config = ExperimentConfig::paper_default(100, harness.seed);
    config.replications = harness.replications;
    config.threads = harness.threads;

    let f3 = figure3_series(&data, &config).expect("figure 3 data");
    println!(
        "{:>5} {:>9} {:>13} {:>9}",
        "t", "missing", "inconsistent", "outliers"
    );
    for t in 0..f3.missing.len() {
        println!(
            "{t:>5} {:>9} {:>13} {:>9}",
            f3.missing[t], f3.inconsistent[t], f3.outliers[t]
        );
    }

    let m: Vec<f64> = f3.missing.iter().map(|&c| c as f64).collect();
    let i: Vec<f64> = f3.inconsistent.iter().map(|&c| c as f64).collect();
    let o: Vec<f64> = f3.outliers.iter().map(|&c| c as f64).collect();
    let corr_mi = pearson(&m, &i).unwrap_or(0.0);
    let (mm, _) = mean_sd(&m);
    let (im, _) = mean_sd(&i);
    let (om, _) = mean_sd(&o);
    println!(
        "\nmean counts per time step: missing {mm:.1}, inconsistent {im:.1}, outliers {om:.1}"
    );
    println!("missing-vs-inconsistent correlation across time: {corr_mi:.3}");

    shape_check(
        "considerable overlap between missing and inconsistent counts",
        corr_mi > 0.8 && (mm - im).abs() < 0.25 * mm,
    );
    shape_check(
        "all three glitch types occur at every scale",
        mm > 0.0 && im > 0.0 && om > 0.0,
    );

    harness.write_json(
        "figure3.json",
        &serde_json::json!({
            "missing": f3.missing,
            "inconsistent": f3.inconsistent,
            "outliers": f3.outliers,
            "missing_inconsistent_correlation": corr_mi,
        }),
    );
}
