//! Figure 2 reproduction: the fixed-budget trade-off between glitch
//! improvement and statistical distortion.
//!
//! Three ways to spend the same budget on a 20 %-missing data set:
//! impute a fixed constant (100 % of glitches fixed, strong distortion),
//! simulate the distribution (40 % fixed, low distortion), or re-measure
//! (30 % fixed, almost none).
//!
//! ```text
//! cargo run --release -p sd-bench --bin figure2
//! ```

use sd_bench::{shape_check, HarnessConfig};
use sd_core::budget_tradeoff;

fn main() {
    let harness = HarnessConfig::from_env();
    let points = budget_tradeoff(20_000, 0.2, harness.seed)
        .expect("20k-sample 20 %-missing trade-off is well-posed");

    println!(
        "{:<36} {:>12} {:>12}",
        "strategy ($K budget)", "% cleaned", "EMD"
    );
    for p in &points {
        println!(
            "{:<36} {:>12.1} {:>12.4}",
            p.scenario.label(),
            p.glitch_improvement_pct,
            p.distortion
        );
    }

    let cheap = &points[0];
    let medium = &points[1];
    let expensive = &points[2];
    shape_check(
        "cheap constant fixes 100 % of glitches",
        (cheap.glitch_improvement_pct - 100.0).abs() < 1e-9,
    );
    shape_check(
        "distortion ordering: constant > simulate > re-measure",
        cheap.distortion > medium.distortion && medium.distortion > expensive.distortion,
    );
    shape_check(
        "coverage ordering: 100 % > 40 % > 30 %",
        medium.glitch_improvement_pct > expensive.glitch_improvement_pct,
    );

    harness.write_json(
        "figure2.json",
        &serde_json::json!({
            "metric": "emd",
            "points": points
                .iter()
                .map(|p| serde_json::json!({
                    "scenario": p.scenario.label(),
                    "pct_cleaned": p.glitch_improvement_pct,
                    "metric": "emd",
                    "emd": p.distortion,
                }))
                .collect::<Vec<_>>(),
        }),
    );
}
