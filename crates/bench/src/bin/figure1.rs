//! Figure 1 reproduction: the schematic of §1.1 made quantitative.
//!
//! A blind 3-σ winsorization rule is calibrated on an *assumed* symmetric
//! model but applied to data whose actual distribution is bimodal with a
//! suspicious low-density region. The harness shows the two errors the
//! paper illustrates: **commission** (legitimate values changed) and
//! **omission** (density-based suspicious values ignored), plus the
//! distributional damage (EMD moves legitimate mass next to the suspicious
//! region).
//!
//! ```text
//! cargo run --release -p sd-bench --bin figure1
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use sd_bench::{shape_check, HarnessConfig};
use sd_emd::emd_1d_samples;
use sd_stats::{Histogram, HistogramSpec, Summary};

fn main() {
    let harness = HarnessConfig::from_env();
    let mut rng = StdRng::seed_from_u64(harness.seed);

    // Actual data: main mode at 50, secondary mode at 110, a sparse
    // "suspicious" low-density bridge at ~85, and true extreme outliers.
    let main_mode = Normal::new(50.0, 6.0).expect("valid normal");
    let second_mode = Normal::new(110.0, 5.0).expect("valid normal");
    let bridge = Normal::new(85.0, 2.0).expect("valid normal");
    let mut actual: Vec<f64> = Vec::new();
    for i in 0..4000 {
        let x = match i % 20 {
            0..=11 => main_mode.sample(&mut rng),
            12..=18 => second_mode.sample(&mut rng),
            _ => bridge.sample(&mut rng), // suspicious low-density region
        };
        actual.push(x);
    }
    // True extreme outliers at both tails.
    for _ in 0..40 {
        actual.push(170.0 + 4.0 * main_mode.sample(&mut rng) / 6.0);
        actual.push(-20.0 + 4.0 * main_mode.sample(&mut rng) / 6.0);
    }

    // The blind rule assumes a symmetric unimodal model fitted by moments.
    let s = Summary::from_slice(&actual);
    let (lo, hi) = s.sigma_limits(3.0);
    println!("assumed-model 3-sigma limits: [{lo:.1}, {hi:.1}]");

    // Winsorize.
    let repaired: Vec<f64> = actual.iter().map(|&x| x.clamp(lo, hi)).collect();

    let spec = HistogramSpec::covering(&actual, 24, 0.02).expect("non-empty");
    let before = Histogram::from_values(spec, &actual);
    let after = Histogram::from_values(spec, &repaired);
    println!("\nbin-center  before  after");
    for ((c, b), a) in before
        .centers()
        .iter()
        .zip(before.counts())
        .zip(after.counts())
    {
        println!("{c:>9.1} {b:>7.0} {a:>6.0}");
    }

    let legit_changed = actual
        .iter()
        .filter(|&&x| (x < lo || x > hi) && (30.0..=130.0).contains(&x))
        .count();
    let suspicious_untouched = actual
        .iter()
        .filter(|&&x| (80.0..=90.0).contains(&x) && x >= lo && x <= hi)
        .count();
    let emd = emd_1d_samples(&actual, &repaired).expect("non-empty");
    println!("\nlegitimate values moved by the blind rule: {legit_changed}");
    println!("suspicious low-density values left untouched: {suspicious_untouched}");
    println!("statistical distortion (1-D EMD): {emd:.3}");

    shape_check(
        "errors of omission: the suspicious region is not treated",
        suspicious_untouched > 100,
    );
    shape_check(
        "the blind rule introduces measurable distortion",
        emd > 0.05,
    );
    shape_check(
        "true extreme outliers are clamped",
        repaired.iter().all(|&x| x >= lo && x <= hi),
    );

    harness.write_json(
        "figure1.json",
        &serde_json::json!({
            "limits": [lo, hi],
            "bin_centers": before.centers(),
            "before": before.counts(),
            "after": after.counts(),
            "metric": "emd",
            "emd": emd,
            "legit_changed": legit_changed,
            "suspicious_untouched": suspicious_untouched,
        }),
    );
}
