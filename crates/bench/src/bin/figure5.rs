//! Figure 5 reproduction: Attribute 3 (the [0, 1] success ratio) before
//! and after Strategies 1 and 2.
//!
//! The paper's reading: imputed values cluster near 1 where the bulk
//! lives, but the Gaussian imputer also emits values **above 1** — new
//! inconsistencies. Under Strategy 1 the winsorized values sit in a narrow
//! band below 1; under Strategy 2 outliers are ignored so imputation alone
//! acts.
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin figure5
//! ```

use sd_bench::{shape_check, HarnessConfig};
use sd_cleaning::paper_strategy;
use sd_core::{figure5_scatter, ExperimentConfig, ScatterPointKind};

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let mut config = ExperimentConfig::paper_default(100, harness.seed);
    config.replications = harness.replications;
    config.threads = harness.threads;

    let pairs = figure5_scatter(
        &data,
        &config,
        &[paper_strategy(1), paper_strategy(2)],
        2,
        200_000,
    )
    .expect("scatter data");

    let mut above_one = Vec::new();
    for pair in &pairs {
        let imputed: Vec<f64> = pair
            .points
            .iter()
            .filter(|p| {
                matches!(
                    p.kind,
                    ScatterPointKind::ImputedFromMissing | ScatterPointKind::Rewritten
                )
            })
            .filter_map(|p| p.treated)
            .collect();
        let over = imputed.iter().filter(|&&v| v > 1.0).count();
        let under_zero = imputed.iter().filter(|&&v| v < 0.0).count();
        let near_one = imputed
            .iter()
            .filter(|&&v| (0.7..=1.0).contains(&v))
            .count();
        println!("\n== Figure 5 — attribute 3 under '{}' ==", pair.label);
        println!("treated cells: {}", imputed.len());
        println!("  imputed in (0.7, 1.0] (bulk): {near_one}");
        println!("  imputed above 1 (new inconsistencies): {over}");
        println!("  imputed below 0: {under_zero}");
        above_one.push((pair.label.clone(), imputed.len(), over));

        harness.write_json(
            &format!("figure5_{}.json", pair.label.replace(' ', "_")),
            &serde_json::json!({
                "strategy": pair.label,
                "points": pair.points
                    .iter()
                    .take(20_000)
                    .map(|p| serde_json::json!({
                        "untreated": p.untreated,
                        "treated": p.treated,
                        "kind": format!("{:?}", p.kind),
                    }))
                    .collect::<Vec<_>>(),
            }),
        );
    }

    println!();
    shape_check(
        "Gaussian imputation emits ratio values above 1 under both strategies",
        above_one.iter().all(|&(_, _, over)| over > 0),
    );
    shape_check(
        "imputed values concentrate near 1 (the data bulk)",
        pairs.iter().all(|pair| {
            let imputed: Vec<f64> = pair
                .points
                .iter()
                .filter(|p| p.kind == ScatterPointKind::ImputedFromMissing)
                .filter_map(|p| p.treated)
                .collect();
            let near = imputed
                .iter()
                .filter(|&&v| (0.7..=1.1).contains(&v))
                .count();
            imputed.is_empty() || near * 2 > imputed.len()
        }),
    );
}
