//! Figure 7 reproduction: the cost of cleaning. Strategy 1 applied to the
//! dirtiest {0, 20, 50, 100} % of series (ranked by normalized glitch
//! score), in the paper's three configurations.
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin figure7
//! ```

use sd_bench::{mean_sd, shape_check, HarnessConfig};
use sd_cleaning::paper_strategy;
use sd_core::{cost_sweep, CostSweepConfig, ExperimentConfig, TransportMode};

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let fractions = vec![0.0, 0.2, 0.5, 1.0];

    let panels = [
        ("(a) n=100, log(attr1)", 100usize, true),
        ("(b) n=100, no log", 100usize, false),
        ("(c) n=500, log(attr1)", 500usize, true),
    ];

    let mut json_panels = Vec::new();
    let mut panel_a: Vec<(f64, f64, f64)> = Vec::new();

    for (label, sample_size, log) in panels {
        let mut experiment = ExperimentConfig::paper_default(sample_size, harness.seed);
        experiment.replications = harness.replications;
        experiment.log_transform_attr1 = log;
        experiment.threads = harness.threads;
        let config = CostSweepConfig {
            experiment,
            fractions: fractions.clone(),
            strategies: vec![paper_strategy(1)],
            transport: TransportMode::Cold,
        };
        let points = cost_sweep(&data, &config).expect("cost sweep");

        println!("\n== Figure 7 {label} ==");
        println!(
            "{:>9} {:>12} {:>10} {:>12} {:>10}",
            "% cleaned", "improvement", "±sd", "EMD", "±sd"
        );
        let mut summary = Vec::new();
        for &fraction in &fractions {
            let imps: Vec<f64> = points
                .iter()
                .filter(|p| p.fraction == fraction)
                .map(|p| p.improvement)
                .collect();
            let emds: Vec<f64> = points
                .iter()
                .filter(|p| p.fraction == fraction)
                .map(|p| p.distortion)
                .collect();
            let (mi, si) = mean_sd(&imps);
            let (md, sd) = mean_sd(&emds);
            println!(
                "{:>9.0} {mi:>12.3} {si:>10.3} {md:>12.4} {sd:>10.4}",
                fraction * 100.0
            );
            summary.push(serde_json::json!({
                "fraction": fraction,
                "improvement_mean": mi,
                "distortion_mean": md,
            }));
            if label.starts_with("(a)") {
                panel_a.push((fraction, mi, md));
            }
        }
        // Self-describing schema: metric names ride along with the panel
        // and every point records its per-metric scores.
        let metrics: Vec<&'static str> = config
            .experiment
            .metrics
            .iter()
            .map(sd_core::DistortionMetric::name)
            .collect();
        json_panels.push(serde_json::json!({
            "panel": label,
            "metrics": metrics,
            "summary": summary,
            "points": points
                .iter()
                .map(|p| serde_json::json!({
                    "fraction": p.fraction,
                    "replication": p.replication,
                    "strategy": p.strategy,
                    "improvement": p.improvement,
                    "metric": p.distortions[0].metric,
                    "emd": p.distortion,
                    "distortions": p.distortions
                        .iter()
                        .map(|s| serde_json::json!({ "metric": s.metric, "value": s.value }))
                        .collect::<Vec<_>>(),
                }))
                .collect::<Vec<_>>(),
        }));
    }

    println!("\n== shape checks (panel a) ==");
    let at = |f: f64| panel_a.iter().find(|&&(x, _, _)| x == f).copied().unwrap();
    let f0 = at(0.0);
    let f20 = at(0.2);
    let f50 = at(0.5);
    let f100 = at(1.0);
    shape_check(
        "0 % cleaned: no improvement, no distortion",
        f0.1.abs() < 1e-9 && f0.2.abs() < 1e-9,
    );
    shape_check(
        "improvement grows monotonically with % cleaned",
        f20.1 > f0.1 && f50.1 > f20.1 && f100.1 >= f50.1 * 0.98,
    );
    shape_check(
        "distortion grows with % cleaned",
        f20.2 > f0.2 && f50.2 > f20.2 * 0.9 && f100.2 >= f50.2 * 0.9,
    );
    shape_check(
        "diminishing returns beyond 50 % (greedy dirtiest-first ranking)",
        (f100.1 - f50.1) < (f50.1 - f0.1),
    );

    harness.write_json(
        "figure7.json",
        &serde_json::json!({ "panels": json_panels }),
    );
}
