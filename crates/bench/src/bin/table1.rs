//! Table 1 reproduction: percentage of records carrying each glitch type,
//! before and after cleaning, for Strategies 1–5 in the paper's three
//! configuration blocks.
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin table1
//! ```

use sd_bench::{shape_check, HarnessConfig};
use sd_cleaning::paper_strategy;
use sd_core::{table1, Table1Config};

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let config = Table1Config {
        blocks: vec![(100, true), (500, true), (100, false)],
        replications: harness.replications,
        seed: harness.seed,
        threads: harness.threads,
    };
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
    let rows = table1(&data, &config, &strategies).expect("table generation");

    println!("Table 1: Percentage of Glitches: Before and After Cleaning");
    println!(
        "{:<28} {:<11} {:>8} {:>8} {:>8}   {:>9} {:>8} {:>8}",
        "block", "strategy", "miss", "incon", "outl", "miss'", "incon'", "outl'"
    );
    for row in &rows {
        println!("{}", row.formatted());
    }

    // Shape checks against the paper's Table 1.
    println!();
    let find = |block_frag: &str, strategy: &str| {
        rows.iter()
            .find(|r| r.block.contains(block_frag) && r.strategy == strategy)
            .expect("row present")
    };
    let log100_s1 = find("n=100, log", "Strategy 1");
    let log100_s2 = find("n=100, log", "Strategy 2");
    let log100_s3 = find("n=100, log", "Strategy 3");
    let log100_s4 = find("n=100, log", "Strategy 4");
    let log100_s5 = find("n=100, log", "Strategy 5");
    let raw100_s1 = find("n=100, no log", "Strategy 1");

    shape_check(
        "dirty missing ≈ 15.8 % (±3)",
        (log100_s1.dirty_pct[0] - 15.8).abs() < 3.0,
    );
    shape_check(
        "dirty inconsistent ≈ 15.9 % (±3), co-occurring with missing",
        (log100_s1.dirty_pct[1] - 15.9).abs() < 3.0,
    );
    shape_check(
        "log flags ≈3× more outliers than raw (16.8 vs 5.1)",
        log100_s1.dirty_pct[2] > 2.0 * raw100_s1.dirty_pct[2],
    );
    shape_check(
        "strategy 1 leaves a tiny missing residual (≈0.03 %)",
        log100_s1.treated_pct[0] < 0.5 && log100_s1.treated_pct[0] > 0.0,
    );
    shape_check(
        "imputation creates new inconsistencies (treated > 0), more without log",
        log100_s1.treated_pct[1] > 0.1 && raw100_s1.treated_pct[1] > log100_s1.treated_pct[1],
    );
    shape_check(
        "winsorization clears outliers under strategies 1/5",
        log100_s1.treated_pct[2] < 0.2 && log100_s5.treated_pct[2] < 0.2,
    );
    shape_check(
        "strategy 2 leaves (and grows) outliers",
        log100_s2.treated_pct[2] >= log100_s2.dirty_pct[2] * 0.9,
    );
    // Strategy 3 never *treats* missing or inconsistent cells, so the
    // missing rate must be byte-identical. The inconsistent rate may dip
    // slightly: the value-based inconsistencies (negative loads, ratios
    // above one — ~1.4 % of records by injection rate) double as 3-σ
    // outliers, and winsorizing those cells resolves the violation as a
    // side effect. It must never increase.
    let s3_incon_drop = log100_s3.dirty_pct[1] - log100_s3.treated_pct[1];
    shape_check(
        "strategy 3 leaves missing untouched; inconsistent drops only via outlier overlap",
        (log100_s3.treated_pct[0] - log100_s3.dirty_pct[0]).abs() < 1e-9
            && (0.0..2.0).contains(&s3_incon_drop),
    );
    shape_check(
        "strategies 4/5 drive missing and inconsistent to zero",
        log100_s4.treated_pct[0] == 0.0
            && log100_s4.treated_pct[1] == 0.0
            && log100_s5.treated_pct[0] == 0.0
            && log100_s5.treated_pct[1] == 0.0,
    );

    harness.write_json(
        "table1.json",
        &serde_json::json!({
            // Table 1 reports glitch percentages, not distortion; the
            // configured metric set still rides along so every artifact
            // is self-describing.
            "metrics": [sd_core::DistortionMetric::paper_default().name()],
            "rows": rows
                .iter()
                .map(|r| serde_json::json!({
                    "block": r.block,
                    "strategy": r.strategy,
                    "dirty_pct": r.dirty_pct,
                    "treated_pct": r.treated_pct,
                }))
                .collect::<Vec<_>>(),
        }),
    );
}
