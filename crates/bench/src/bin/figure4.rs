//! Figure 4 reproduction: Attribute 1 untreated vs. treated under
//! Strategy 1, (a) without and (b) with the log transformation.
//!
//! The paper's reading: gray points near the Y axis are imputed missing
//! values; the diagonal is untouched data; horizontal bands are winsorized
//! values whose level varies with the replication's 3-σ limits. Without the
//! log transform the Gaussian imputer emits *negative* loads (new
//! inconsistencies); with it, the lower tail is winsorized instead of the
//! upper.
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin figure4
//! ```

use sd_bench::{shape_check, HarnessConfig};
use sd_cleaning::paper_strategy;
use sd_core::{figure4_scatter, ExperimentConfig};

use sd_core::ScatterPoint;

fn summarize(points: &[ScatterPoint]) -> (usize, usize, usize, usize, usize) {
    use sd_core::ScatterPointKind as K;
    let mut unchanged = 0;
    let mut imputed = 0;
    let mut rewritten = 0;
    let mut still_missing = 0;
    let mut negative_imputed = 0;
    for p in points {
        match p.kind {
            K::Unchanged => unchanged += 1,
            K::ImputedFromMissing => {
                imputed += 1;
                if p.treated.is_some_and(|v| v < 0.0) {
                    negative_imputed += 1;
                }
            }
            K::Rewritten => {
                rewritten += 1;
                if p.treated.is_some_and(|v| v < 0.0) {
                    negative_imputed += 1;
                }
            }
            K::StillMissing => still_missing += 1,
        }
    }
    (
        unchanged,
        imputed,
        rewritten,
        still_missing,
        negative_imputed,
    )
}

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let strategy = paper_strategy(1);

    let mut results = Vec::new();
    for (label, log) in [("(a) no log", false), ("(b) log(attr1)", true)] {
        let mut config = ExperimentConfig::paper_default(100, harness.seed);
        config.replications = harness.replications;
        config.log_transform_attr1 = log;
        config.threads = harness.threads;
        let pair = figure4_scatter(&data, &config, &strategy, 0, 200_000).expect("scatter data");
        let (unchanged, imputed, rewritten, still_missing, negative) = summarize(&pair.points);
        println!(
            "\n== Figure 4 {label} — attribute 1 under '{}' ==",
            pair.label
        );
        println!("points: {}", pair.points.len());
        println!("  unchanged (y = x diagonal):   {unchanged}");
        println!("  imputed from missing (gray):  {imputed}");
        println!("  rewritten (winsorized/incons): {rewritten}");
        println!("  still missing (residual):     {still_missing}");
        println!("  negative treated values:      {negative}");
        results.push((
            label,
            unchanged,
            imputed,
            rewritten,
            still_missing,
            negative,
        ));

        harness.write_json(
            &format!("figure4_{}.json", if log { "log" } else { "raw" }),
            &serde_json::json!({
                "label": label,
                "strategy": pair.label,
                "points": pair.points
                    .iter()
                    .take(20_000)
                    .map(|p| serde_json::json!({
                        "untreated": p.untreated,
                        "treated": p.treated,
                        "kind": format!("{:?}", p.kind),
                        "replication": p.replication,
                    }))
                    .collect::<Vec<_>>(),
            }),
        );
    }

    println!();
    let raw = &results[0];
    let log = &results[1];
    shape_check(
        "negative imputations occur without the log transform",
        raw.5 > 0,
    );
    shape_check("log transform prevents negative imputed loads", log.5 == 0);
    shape_check(
        "most data stays on the y = x diagonal",
        raw.1 > raw.3 && log.1 > log.3,
    );
    // Fully-missing records are rare (≈0.03 %), so at small scales the
    // residual can legitimately be zero; the invariant is that it stays
    // tiny relative to the successfully imputed mass.
    shape_check(
        "unimputable residual stays tiny (≤1 % of imputations)",
        (raw.4 as f64) <= 0.01 * raw.1.max(1) as f64,
    );
}
