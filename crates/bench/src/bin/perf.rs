//! Solver performance tracker: measures µs/iter for the EMD solver family
//! (transportation simplex, min-cost flow, Sinkhorn, grid pipeline) on
//! fixed synthetic instances and records the numbers to
//! `$SD_OUT/BENCH_emd.json`, so the perf trajectory accumulates
//! PR-over-PR (CI runs this at `SD_SCALE=small` and uploads the artifact).
//!
//! Instances are identical to the `emd` criterion bench (shared through
//! [`sd_bench::synth`]); `SD_SCALE` only modulates how many measured
//! iterations each point gets, never the instance itself. Construction
//! (clones, problem building) happens outside the timed region.
//!
//! ```text
//! SD_SCALE=small SD_OUT=out cargo run --release -p sd-bench --bin perf
//! ```

use sd_bench::synth::{grid_cloud, transport_instance};
use sd_bench::{HarnessConfig, Scale};
use sd_emd::{sinkhorn, GridEmd, MinCostFlow, SinkhornParams, TransportProblem};
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// One measured point: `µs/iter` over `iters` timed runs (after 1 warm-up),
/// with per-iteration input construction excluded from the clock.
fn measure<I, S: FnMut() -> I, R: FnMut(I) -> f64>(
    iters: usize,
    mut setup: S,
    mut routine: R,
) -> f64 {
    black_box(routine(setup()));
    let mut total = 0.0f64;
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        total += start.elapsed().as_secs_f64();
    }
    total / iters as f64 * 1e6
}

fn main() {
    let harness = HarnessConfig::from_env();
    let iters = match harness.scale {
        Scale::Small => 5,
        Scale::Harness => 20,
        Scale::Paper => 50,
    };
    let mut results: Vec<Value> = Vec::new();
    let mut record = |bench: &str, size: usize, us: f64| {
        println!("perf: {bench:<10} n={size:<6} {us:>12.3} µs/iter");
        results.push(json!({ "bench": bench, "size": size, "us_per_iter": us }));
    };

    for size in [16usize, 64, 128] {
        let (s, d, cost) = transport_instance(size, size, 11);
        let us = measure(
            iters,
            || (s.clone(), d.clone(), cost.clone()),
            |(s, d, c)| TransportProblem::new(s, d, c).unwrap().solve().unwrap(),
        );
        record("simplex", size, us);
        let us = measure(
            iters,
            || (s.clone(), d.clone(), cost.clone()),
            |(s, d, c)| MinCostFlow::new(s, d, c).unwrap().solve().unwrap(),
        );
        record("flow", size, us);
        let us = measure(
            iters,
            || (),
            |()| {
                sinkhorn(
                    black_box(&s),
                    black_box(&d),
                    black_box(&cost),
                    SinkhornParams {
                        regularization: 0.1,
                        max_iterations: 50_000,
                        tolerance: 1e-6,
                    },
                )
                .unwrap()
            },
        );
        record("sinkhorn", size, us);
    }

    for points in [1_000usize, 10_000] {
        let a = grid_cloud(points, 13, 0.0);
        let b = grid_cloud(points, 14, 10.0);
        let us = measure(
            iters,
            || (),
            |()| GridEmd::new(6).distance(&a, &b).unwrap().emd,
        );
        record("grid", points, us);
    }

    harness.write_json(
        "BENCH_emd.json",
        &json!({
            "scale": harness.scale.label(),
            "seed": harness.seed,
            "iters_per_point": iters,
            "benches": Value::Array(results),
        }),
    );
}
