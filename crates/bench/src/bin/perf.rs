//! Performance tracker: measures µs/iter for the EMD solver family
//! (transportation simplex, min-cost flow, Sinkhorn, grid pipeline), the
//! glitch-detection and cleaning-strategy hot paths, and one end-to-end
//! `(replication × strategy)` unit of the experiment engine, recording the
//! numbers to `$SD_OUT/BENCH_emd.json` so the perf trajectory accumulates
//! PR-over-PR (CI runs this at `SD_SCALE=small` and uploads the artifact).
//!
//! Solver instances are identical to the `emd` criterion bench (shared
//! through [`sd_bench::synth`]); the grid row uses
//! [`sd_bench::synth::grid_cloud_pair`], whose single-stream seeding is
//! pinned so grid deltas stay like-for-like PR-over-PR. `SD_SCALE` only
//! modulates how many measured iterations each point gets, never the
//! instance itself. Construction (clones, problem building) happens outside
//! the timed region.
//!
//! The `replication` row is the engine's unit of work: the wall time of a
//! full batch run at `sample_size = 100`, five paper strategies, divided by
//! `R × S`. It includes per-replication artifact construction, strategy
//! application, re-detection, and EMD distortion — the quantity the staged
//! engine optimises.
//!
//! The distortion-kernel rows track the trait-based kernel subsystem:
//! `distortion_kl` / `distortion_maha` measure the incremental
//! `score_patch` paths against their `_ref` materialized counterparts, and
//! `score_multi` / `score_multi_seq` measure one all-six-kernels run per
//! unit against six sequential single-metric runs (the cleaning-pass
//! amortization the kernel subsystem buys).
//!
//! ```text
//! SD_SCALE=small SD_OUT=out cargo run --release -p sd-bench --bin perf
//! ```

use sd_bench::synth::{grid_cloud_pair, transport_instance};
use sd_bench::{HarnessConfig, Scale};
use sd_cleaning::paper_strategy;
use sd_core::WindowedConfig;
use sd_core::{
    budget_optimize, budget_optimize_reference, cost_sweep, cost_sweep_reference,
    BudgetOptimizerConfig, CostModel, CostSweepConfig, DistortionMetric, Experiment,
    ExperimentConfig, SelectionPolicy, TransportMode,
};
use sd_data::Topology;
use sd_emd::{
    sinkhorn, BatchTransport, GridEmd, MinCostFlow, PatchedCloud, SignatureCache, SinkhornParams,
    TransportProblem,
};
use sd_netsim::{generate, stream_rows, NetsimConfig};
use sd_serve::{ServeConfig, StreamingService};
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// One measured point: `µs/iter` over `iters` timed runs (after 1 warm-up),
/// with per-iteration input construction excluded from the clock.
fn measure<I, S: FnMut() -> I, R: FnMut(I) -> f64>(
    iters: usize,
    mut setup: S,
    mut routine: R,
) -> f64 {
    black_box(routine(setup()));
    let mut total = 0.0f64;
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        total += start.elapsed().as_secs_f64();
    }
    total / iters as f64 * 1e6
}

/// Aborts the run on a setup or solve failure: a perf row measured after
/// an error would be meaningless, and a bench binary has no caller to
/// propagate to — exit with the error instead of panicking.
fn require<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: {what} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let harness = HarnessConfig::from_env();
    let iters = match harness.scale {
        Scale::Small => 5,
        Scale::Harness => 20,
        Scale::Paper => 50,
    };
    let mut results: Vec<Value> = Vec::new();
    let mut record = |bench: &str, size: usize, us: f64| {
        println!("perf: {bench:<12} n={size:<6} {us:>12.3} µs/iter");
        results.push(json!({ "bench": bench, "size": size, "us_per_iter": us }));
    };

    for size in [16usize, 64, 128] {
        let (s, d, cost) = transport_instance(size, size, 11);
        let us = measure(
            iters,
            || (s.clone(), d.clone(), cost.clone()),
            |(s, d, c)| TransportProblem::new(s, d, c).unwrap().solve().unwrap(),
        );
        record("simplex", size, us);
        // Test-only cross-validator (see `sd_emd::MinCostFlow`): tracked
        // here so the gap to the simplex stays visible, not because
        // anything hot calls it. The bipartite-specialized SSP rewrite
        // cut the historical ~23× gap at n = 128 to single digits, which
        // is why the random validation corpora run un-gated on every
        // test run.
        let us = measure(
            iters,
            || (s.clone(), d.clone(), cost.clone()),
            |(s, d, c)| MinCostFlow::new(s, d, c).unwrap().solve().unwrap(),
        );
        record("flow", size, us);
        let us = measure(
            iters,
            || (),
            |()| {
                sinkhorn(
                    black_box(&s),
                    black_box(&d),
                    black_box(&cost),
                    SinkhornParams {
                        regularization: 0.1,
                        max_iterations: 50_000,
                        tolerance: 1e-6,
                    },
                )
                .unwrap()
            },
        );
        record("sinkhorn", size, us);
    }

    // Warm-started batch transport: S = 5 solves against one fixed dirty
    // signature (shared supply + ground costs) whose cleaned-side masses
    // drift incrementally — the shape of one replication's batch and of
    // the budget optimizer's greedy candidate sweep, where consecutive
    // instances differ by one candidate's sparse edits.
    // `batch_emd_cold` solves each instance from a fresh
    // north-west-corner basis on a reused arena (allocation amortized —
    // the engine's default path); `batch_emd` chains them through one
    // `BatchTransport`, warm-starting every solve after the first from
    // the previous optimum's repaired basis. Both rows are µs per
    // transport, so their ratio is the warm-start speedup per
    // replication-shaped batch.
    {
        let s_count = 5usize;
        let size = 128usize;
        let (supply, base_demand, cost) = transport_instance(size, size, 11);
        let mut state: u64 = 0x5DEECE66D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let mut demands: Vec<Vec<f64>> = Vec::with_capacity(s_count);
        let mut d = base_demand.clone();
        for _ in 0..s_count {
            demands.push(d.clone());
            // Two sparse mass moves ≈ one candidate's edit footprint.
            for _ in 0..2 {
                let a = (next() * size as f64) as usize % size;
                let b = (next() * size as f64) as usize % size;
                let slice = d[a] * 0.1;
                d[a] -= slice;
                d[b] += slice;
            }
        }
        let mut warm_arena = BatchTransport::new();
        let us = measure(
            iters,
            || (),
            |()| {
                warm_arena.reset_chain();
                let mut acc = 0.0;
                for d in &demands {
                    acc += require(
                        warm_arena.solve(black_box(&supply), black_box(d), black_box(&cost)),
                        "warm batch solve",
                    );
                }
                acc
            },
        ) / s_count as f64;
        record("batch_emd", size, us);
        let mut cold_arena = BatchTransport::new();
        let us = measure(
            iters,
            || (),
            |()| {
                let mut acc = 0.0;
                for d in &demands {
                    acc += require(
                        cold_arena.solve_cold(black_box(&supply), black_box(d), black_box(&cost)),
                        "cold batch solve",
                    );
                }
                acc
            },
        ) / s_count as f64;
        record("batch_emd_cold", size, us);
    }

    for points in [1_000usize, 10_000] {
        // Pinned single-stream pair (see `grid_cloud_pair`): re-baselined in
        // PR 3 after the PR-2 grid row briefly used independent seeds.
        let (a, b) = grid_cloud_pair(points, 13, 10.0);
        let us = measure(
            iters,
            || (),
            |()| GridEmd::new(6).distance(&a, &b).unwrap().emd,
        );
        record("grid", points, us);
    }

    // Distortion-kernel rows: each kernel's incremental score_patch (the
    // engine's per-unit path, prepared dirty-side state warm) against its
    // materialized score_rows reference, on a pinned 10k-row cloud with a
    // 2 % sparse edit set — the engine's typical cleaned-fraction shape.
    {
        let points = 10_000usize;
        let (dirty, replacement_pool) = grid_cloud_pair(points, 29, 4.0);
        let edits: Vec<(usize, Vec<f64>)> = (0..points / 50)
            .map(|i| (i * 47 % points, replacement_pool[i].clone()))
            .collect();
        let cache = SignatureCache::new(dirty.clone());
        let cleaned = PatchedCloud::new(&cache, edits.clone()).materialize();
        for (label, metric) in [
            ("distortion_kl", DistortionMetric::KlDivergence { bins: 6 }),
            ("distortion_maha", DistortionMetric::Mahalanobis),
        ] {
            let kernel = metric.kernel();
            let prepared = kernel.prepare(&cache);
            let us = measure(
                iters,
                || PatchedCloud::new(&cache, edits.clone()),
                |patched| prepared.score_patch(&patched).unwrap(),
            );
            record(label, points, us);
            let us = measure(
                iters,
                || (),
                |()| kernel.score_rows(&dirty, &cleaned).unwrap(),
            );
            record(&format!("{label}_ref"), points, us);
        }
    }

    // Experiment hot paths: glitch detection, cleaning strategies, and the
    // end-to-end (replication × strategy) engine unit, on the fixed small
    // telemetry instance at the paper's B = 100 sample size.
    let data = generate(&NetsimConfig::small(42)).dataset;
    let mut config = ExperimentConfig::paper_default(100, 42);
    config.threads = 1; // per-unit cost, undiluted by parallelism
    let experiment = Experiment::new(config.clone());
    let prepared = experiment.prepare(&data).expect("prepare succeeds");
    let artifacts = prepared.replication(0);

    let us = measure(
        iters,
        || (),
        |()| {
            let matrices = artifacts
                .detector
                .detect_dataset(black_box(&artifacts.dirty));
            matrices.len() as f64
        },
    );
    record("detect", artifacts.dirty.num_series(), us);

    for k in [1u32, 5] {
        let strategy = paper_strategy(k);
        let us = measure(
            iters,
            || (),
            |()| {
                let (cleaned, outcome) = artifacts.apply(black_box(&strategy), config.seed, 0);
                cleaned.num_series() as f64 + outcome.cells_changed() as f64
            },
        );
        record(&format!("clean_s{k}"), artifacts.dirty.num_series(), us);
    }

    {
        let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
        let reps = match harness.scale {
            Scale::Small => 3,
            Scale::Harness => 10,
            Scale::Paper => 25,
        };
        let mut run_config = config.clone();
        run_config.replications = reps;
        let runner = Experiment::new(run_config.clone());
        let units = (reps * strategies.len()) as f64;
        // Both replication rows time only the unit work: `prepare()` (pool
        // partitioning, sampler setup) is hoisted out of the clock so the
        // engine and reference rows stay like-for-like.
        let prepared = runner.prepare(&data).expect("prepare succeeds");
        let executor = sd_core::ThreadPoolExecutor::new(1);
        let us = measure(
            iters,
            || (),
            |()| {
                let result = prepared
                    .run_with(black_box(&strategies), &executor)
                    .unwrap();
                result.outcomes().len() as f64
            },
        ) / units;
        record("replication", config.sample_size, us);

        // The historical replication-granular path (kept in-tree as the
        // engine's bit-identity reference): same units, no artifact
        // sharing, full-clone cleaning, uncached distortion. Recording it
        // alongside keeps the engine speedup measurable in one run.
        let ref_prepared = &prepared;
        let us = measure(
            iters,
            || (),
            |()| {
                let mut score = 0.0;
                for i in 0..reps {
                    let artifacts = ref_prepared.replication(i);
                    for (si, s) in strategies.iter().enumerate() {
                        score += ref_prepared
                            .evaluate(black_box(&artifacts), s, si)
                            .unwrap()
                            .distortion;
                    }
                }
                score
            },
        ) / units;
        record("replication_ref", config.sample_size, us);

        // Multi-metric amortization: `score_multi` drains the same R × S
        // units once while scoring all six kernels per unit from one
        // cleaning pass; `score_multi_seq` is the ablation the kernel
        // subsystem replaces — six sequential single-metric experiment
        // runs, each re-detecting and re-cleaning every unit. Both rows
        // are µs per (replication × strategy) unit, so their ratio is the
        // amortization factor.
        let suite = DistortionMetric::full_suite();
        let mut multi_config = run_config.clone();
        multi_config.metrics = suite.clone();
        let multi_prepared = Experiment::new(multi_config)
            .prepare(&data)
            .expect("prepare succeeds");
        let us = measure(
            iters,
            || (),
            |()| {
                let result = multi_prepared
                    .run_with(black_box(&strategies), &executor)
                    .unwrap();
                result.outcomes().len() as f64
            },
        ) / units;
        record("score_multi", config.sample_size, us);

        let single_prepared: Vec<_> = suite
            .iter()
            .map(|&metric| {
                let mut c = run_config.clone();
                c.metrics = vec![metric];
                Experiment::new(c).prepare(&data).expect("prepare succeeds")
            })
            .collect();
        let us = measure(
            iters,
            || (),
            |()| {
                let mut n = 0usize;
                for prepared in &single_prepared {
                    n += prepared
                        .run_with(black_box(&strategies), &executor)
                        .unwrap()
                        .outcomes()
                        .len();
                }
                n as f64
            },
        ) / units;
        record("score_multi_seq", config.sample_size, us);
    }

    // Cost-sweep unit: one (replication × strategy × budget fraction)
    // point of the Figure 7 study. The engine row drains the sweep through
    // the staged work queue (shared replication artifacts, one dirty-side
    // signature cache per replication, per-budget shared ModelFit across
    // the model-imputing strategies, patch cleaning); the `_ref` row is
    // the preserved replication-granular path (full clone, full redetect,
    // materialized distortion, per-point model fit) in the same run, so
    // the engine speedup stays measurable PR-over-PR.
    {
        let reps = match harness.scale {
            Scale::Small => 2,
            Scale::Harness => 6,
            Scale::Paper => 15,
        };
        let mut sweep_experiment = config.clone();
        sweep_experiment.replications = reps;
        let sweep = CostSweepConfig {
            experiment: sweep_experiment,
            fractions: vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0],
            strategies: vec![paper_strategy(1), paper_strategy(2)],
            transport: TransportMode::Cold,
        };
        let units = (reps * sweep.strategies.len() * sweep.fractions.len()) as f64;
        let run_sweep = |cfg: &CostSweepConfig| {
            let points = cost_sweep(black_box(&data), cfg).unwrap();
            points.len() as f64
        };
        let us = measure(iters, || (), |()| run_sweep(&sweep)) / units;
        record("cost_sweep", config.sample_size, us);
        // Same sweep with each strategy's fraction ladder chained on one
        // warm transport arena (`TransportMode::Warm`): consecutive
        // fractions re-optimize the previous optimum's basis instead of
        // solving from a fresh north-west corner, and the ratio to the
        // `cost_sweep` row above is the warm-chain speedup per point.
        let warm_sweep = CostSweepConfig {
            transport: TransportMode::Warm,
            ..sweep.clone()
        };
        let us = measure(iters, || (), |()| run_sweep(&warm_sweep)) / units;
        record("cost_sweep_warm", config.sample_size, us);
        let us = measure(
            iters,
            || (),
            |()| {
                let points = cost_sweep_reference(black_box(&data), &sweep).unwrap();
                points.len() as f64
            },
        ) / units;
        record("cost_sweep_ref", config.sample_size, us);
    }

    // Budget-optimizer unit: one (replication × budget) frontier point of
    // the greedy budgeted-cleaning policy. The engine row plans each
    // trajectory on the shared signature cache and scores every candidate
    // union incrementally through `score_edits`; the `_ref` row is the
    // preserved replication-granular path that materializes the full
    // cleaned cloud for every one of those candidate evaluations, so the
    // incremental-kernel speedup stays measurable PR-over-PR.
    {
        let reps = match harness.scale {
            Scale::Small => 2,
            Scale::Harness => 4,
            Scale::Paper => 8,
        };
        let mut opt_experiment = config.clone();
        opt_experiment.replications = reps;
        let opt = BudgetOptimizerConfig {
            experiment: opt_experiment,
            strategies: vec![paper_strategy(1)],
            budgets: vec![0.0, 25.0, 100.0],
            cost_model: CostModel::uniform(),
            policy: SelectionPolicy::Greedy,
            distortion_weight: 0.1,
            transport: TransportMode::Cold,
        };
        let units = (reps * opt.budgets.len()) as f64;
        let us = measure(
            iters,
            || (),
            |()| {
                let points = budget_optimize(black_box(&data), &opt).unwrap();
                points.len() as f64
            },
        ) / units;
        record("budget_opt", config.sample_size, us);
        let us = measure(
            iters,
            || (),
            |()| {
                let points = budget_optimize_reference(black_box(&data), &opt).unwrap();
                points.len() as f64
            },
        ) / units;
        record("budget_opt_ref", config.sample_size, us);
    }

    // Thread-scaling curve: the same R × S engine batch on explicit
    // 1/2/4/8-thread executors, recorded as µs per (replication ×
    // strategy) unit at each thread count (`size` is the thread count).
    // Results are bit-identical across thread counts by the engine's
    // determinism contract, so the curve measures pure scheduling — the
    // `SD_THREADS` knob's payoff. Thread counts beyond the host's cores
    // still measure honestly; they just stop improving.
    {
        let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
        let reps = match harness.scale {
            Scale::Small => 3,
            Scale::Harness => 10,
            Scale::Paper => 25,
        };
        let mut scaling_config = config.clone();
        scaling_config.replications = reps;
        let runner = Experiment::new(scaling_config);
        let prepared = require(runner.prepare(&data), "thread-scaling prepare");
        let units = (reps * strategies.len()) as f64;
        for threads in [1usize, 2, 4, 8] {
            let executor = sd_core::ThreadPoolExecutor::new(threads);
            let us = measure(
                iters,
                || (),
                |()| {
                    let result = require(
                        prepared.run_with(black_box(&strategies), &executor),
                        "thread-scaling batch",
                    );
                    result.outcomes().len() as f64
                },
            ) / units;
            record("thread_scaling", threads, us);
        }
    }

    // Streaming-service rows: the §3.3 pipeline served online through
    // sd-serve's bounded-channel shards (`SD_SHARDS`, default 4).
    // `streaming_throughput` is µs per ingested row for a complete stream
    // — launch, every row, every window evaluation, and the joined
    // shutdown all inside the clock — so 10 µs/row ≡ 10⁵ rows/s
    // sustained, the serving layer's paper-scale target.
    // `streaming_latency` is the complement: rows are fed one window
    // stride at a time and the clock runs from the stride's last row to
    // the blocking `next_window` update — the freshness a live consumer
    // of the trajectory actually observes. Unlike the engine rows, the
    // stream itself grows with `SD_SCALE` (throughput claims need
    // sustained load, not a 6 000-row sprint), so compare rows only
    // within one scale.
    {
        // `SD_NODES` overrides the stream's fleet size outright (the
        // 10⁴–10⁵-sector serving regime, horizon bounded by
        // `streaming_netsim_config`); otherwise each scale keeps its
        // historical pinned stream so rows stay comparable PR-over-PR.
        let stream_config = if harness.nodes > 0 {
            harness.streaming_netsim_config()
        } else {
            match harness.scale {
                Scale::Small => NetsimConfig::small(42),
                Scale::Harness => NetsimConfig::for_topology(Topology::new(2, 10, 5), 170, 42),
                Scale::Paper => NetsimConfig::harness_scale(42),
            }
        };
        let stream_data = generate(&stream_config).dataset;
        let rows = stream_rows(&stream_data);
        let nodes: Vec<_> = stream_data.series().iter().map(|s| s.node()).collect();
        let attributes: Vec<String> = stream_data
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        let window = 30usize;
        let serve = ServeConfig::new(
            WindowedConfig::paper_default(window, window, harness.seed),
            attributes,
        )
        .with_shards(harness.shards);
        let strategies = vec![paper_strategy(1)];
        let stream_iters = match harness.scale {
            Scale::Small => 5,
            _ => 10,
        };
        let us = measure(
            stream_iters,
            || rows.clone(),
            |rows| {
                let service = require(
                    StreamingService::launch(serve.clone(), nodes.clone(), strategies.clone()),
                    "streaming launch",
                );
                for row in rows {
                    require(service.ingest(row), "streaming ingest");
                }
                require(service.finish(), "streaming finish").num_windows() as f64
            },
        ) / rows.len() as f64;
        record("streaming_throughput", rows.len(), us);

        // Uniform series lengths make the time-major stream sliceable by
        // stride: rows_per_step consecutive rows share one time step.
        let rows_per_step = nodes.len();
        let horizon = stream_config.series_len;
        let num_windows = horizon / window;
        let mut latencies = Vec::with_capacity(stream_iters * num_windows);
        for _ in 0..stream_iters {
            let service = require(
                StreamingService::launch(serve.clone(), nodes.clone(), strategies.clone()),
                "streaming launch",
            );
            for w in 0..num_windows {
                let stride_rows =
                    &rows[w * window * rows_per_step..(w + 1) * window * rows_per_step];
                for row in stride_rows {
                    require(service.ingest(row.clone()), "streaming ingest");
                }
                let start = Instant::now();
                let update = require(
                    service.next_window().ok_or("update feed closed early"),
                    "streaming next_window",
                );
                latencies.push(start.elapsed().as_secs_f64());
                black_box(update.window_index);
            }
            require(service.finish(), "streaming finish");
        }
        let us = latencies.iter().sum::<f64>() / latencies.len() as f64 * 1e6;
        record("streaming_latency", rows_per_step, us);

        // Pipelined-evaluation rows: the same stream under a kernel-heavy
        // windowed config — all six distortion kernels, window 20 /
        // stride 10 (overlapping windows), per-window threads pinned to 1
        // so all parallelism comes from the evaluator pool — served with
        // `SD_EVALUATORS` workers (`streaming_pipelined`) and with the
        // serial pool (`streaming_pipelined_ref`). Both are µs per
        // ingested row for the complete stream; their ratio is the
        // cross-window pipelining speedup. Reports are bit-identical by
        // the reorder stage's in-order publication, so the ratio measures
        // pure overlap.
        let mut heavy = WindowedConfig::paper_default(20, 10, harness.seed);
        heavy.metrics = DistortionMetric::full_suite();
        heavy.threads = 1;
        let heavy_serve =
            ServeConfig::new(heavy, serve.attributes.clone()).with_shards(harness.shards);
        for (bench, evaluators) in [
            ("streaming_pipelined", harness.evaluators.max(1)),
            ("streaming_pipelined_ref", 1),
        ] {
            let pooled = heavy_serve.clone().with_evaluators(evaluators);
            let us = measure(
                stream_iters,
                || rows.clone(),
                |rows| {
                    let service = require(
                        StreamingService::launch(pooled.clone(), nodes.clone(), strategies.clone()),
                        "pipelined launch",
                    );
                    for row in rows {
                        require(service.ingest(row), "pipelined ingest");
                    }
                    require(service.finish(), "pipelined finish").num_windows() as f64
                },
            ) / rows.len() as f64;
            record(bench, evaluators, us);
        }
    }

    harness.write_json(
        "BENCH_emd.json",
        &json!({
            "scale": harness.scale.label(),
            "seed": harness.seed,
            "iters_per_point": iters,
            "benches": Value::Array(results),
        }),
    );
}
