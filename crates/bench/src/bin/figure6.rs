//! Figure 6 reproduction: statistical distortion (EMD) vs. glitch-score
//! improvement for the five cleaning strategies, in three configurations:
//! (a) B = 100 with log(Attribute 1), (b) B = 100 raw, (c) B = 500 with
//! log(Attribute 1).
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin figure6
//! ```

use sd_bench::{mean_sd, shape_check, HarnessConfig};
use sd_cleaning::{paper_strategy, CleaningStrategy};
use sd_core::{Experiment, ExperimentConfig};

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();

    // (label, sample size, log factor) — the paper's three panels.
    let panels = [
        ("(a) n=100, log(attr1)", 100usize, true),
        ("(b) n=100, no log", 100usize, false),
        ("(c) n=500, log(attr1)", 500usize, true),
    ];

    let mut json_panels = Vec::new();
    // Remember panel means for the shape checks: (a) log and (b) raw.
    let mut panel_a_means: Vec<(String, f64, f64)> = Vec::new();
    let mut panel_b_means: Vec<(String, f64, f64)> = Vec::new();

    for (label, sample_size, log) in panels {
        let mut config = ExperimentConfig::paper_default(sample_size, harness.seed);
        config.replications = harness.replications;
        config.log_transform_attr1 = log;
        config.threads = harness.threads;

        let result = Experiment::new(config)
            .run(&data, &strategies)
            .expect("experiment must run");

        println!("\n== Figure 6 {label} ==");
        println!(
            "{:<32} {:>12} {:>10} {:>12} {:>10}",
            "strategy", "improvement", "±sd", "EMD", "±sd"
        );
        let mut spreads = Vec::new();
        for (si, s) in strategies.iter().enumerate() {
            let outcomes = result.for_strategy(si);
            let improvements: Vec<f64> = outcomes.iter().map(|o| o.improvement).collect();
            let distortions: Vec<f64> = outcomes.iter().map(|o| o.distortion).collect();
            let (mi, si_) = mean_sd(&improvements);
            let (md, sd_) = mean_sd(&distortions);
            println!(
                "{:<32} {mi:>12.3} {si_:>10.3} {md:>12.4} {sd_:>10.4}",
                s.name()
            );
            spreads.push((s.name(), mi, md, si_, sd_));
            if label.starts_with("(a)") {
                panel_a_means.push((s.name(), mi, md));
            } else if label.starts_with("(b)") {
                panel_b_means.push((s.name(), mi, md));
            }
        }

        // Self-describing schema: the scored metric names ride along with
        // every panel, and each point records its per-metric scores, so
        // multi-metric configurations need no side channel.
        let metrics = result.metrics().to_vec();
        json_panels.push(serde_json::json!({
            "panel": label,
            "sample_size": sample_size,
            "log_transform": log,
            "metrics": metrics,
            "means": spreads
                .iter()
                .map(|(name, mi, md, si_, sd_)| serde_json::json!({
                    "strategy": name,
                    "metric": metrics[0],
                    "improvement_mean": mi,
                    "distortion_mean": md,
                    "improvement_sd": si_,
                    "distortion_sd": sd_,
                }))
                .collect::<Vec<_>>(),
            "points": result.outcomes()
                .iter()
                .map(|o| serde_json::json!({
                    "strategy": o.strategy,
                    "improvement": o.improvement,
                    "metric": o.distortions[0].metric,
                    "emd": o.distortion,
                    "distortions": o.distortions
                        .iter()
                        .map(|s| serde_json::json!({ "metric": s.metric, "value": s.value }))
                        .collect::<Vec<_>>(),
                }))
                .collect::<Vec<_>>(),
        }));
    }

    // Shape checks against the paper's qualitative findings (§5.5).
    println!("\n== shape checks ==");
    let find = |means: &[(String, f64, f64)], name: &str| {
        means
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, imp, emd)| (imp, emd))
            .expect("strategy present")
    };
    let a1 = find(&panel_a_means, "winsorize and impute");
    let a2 = find(&panel_a_means, "impute only");
    let a3 = find(&panel_a_means, "winsorize only");
    let a4 = find(&panel_a_means, "replace with mean only");
    let a5 = find(&panel_a_means, "winsorize and replace with mean");
    let b2 = find(&panel_b_means, "impute only");
    let b3 = find(&panel_b_means, "winsorize only");
    let b4 = find(&panel_b_means, "replace with mean only");

    shape_check(
        "impute-only and mean-replacement treat the same glitches (similar improvement)",
        (a2.0 - a4.0).abs() < 0.5 * a2.0.max(a4.0),
    );
    shape_check(
        "raw panel: mean replacement distorts less than Gaussian imputation (b: s4 < s2)",
        b4.1 < b2.1,
    );
    shape_check(
        "composite strategies beat single-method improvement (s1 > s2, s5 > s4)",
        a1.0 > a2.0 && a5.0 > a4.0,
    );
    shape_check(
        "log transform flags more outliers: winsorize-only improves more in (a) than (b)",
        a3.0 > b3.0,
    );
    shape_check(
        "winsorize-only improves least among composite-treating strategies",
        a3.0 < a1.0 && a3.0 < a5.0,
    );
    // Documented deviation (EXPERIMENTS.md): in the log working space the
    // conditional Gaussian tracks the contaminated marginal closely, so
    // panel (a)'s impute-vs-mean distortion ordering flips relative to the
    // paper. The raw panel reproduces the paper's mechanism.
    println!(
        "note: panel (a) impute-only EMD {:.4} vs mean-replace {:.4} (paper orders these the other way; see EXPERIMENTS.md §deviations)",
        a2.1, a4.1
    );

    harness.write_json(
        "figure6.json",
        &serde_json::json!({ "panels": json_panels }),
    );
}
