//! Budgeted-cleaning frontier: strategy 1 under a fixed repair budget,
//! selected greedily by marginal glitch improvement per unit of cost
//! (distortion-penalized), against the paper's §5.2 dirtiest-first
//! ordering and a random control. Every point scores the full distortion
//! suite from one cleaning pass.
//!
//! ```text
//! SD_SCALE=harness cargo run --release -p sd-bench --bin figure_budget
//! ```

use sd_bench::{mean_sd, shape_check, HarnessConfig};
use sd_cleaning::paper_strategy;
use sd_core::{
    budget_optimize, BudgetOptimizerConfig, CostModel, DistortionMetric, ExperimentConfig,
    FrontierPoint, SelectionPolicy, TransportMode,
};

fn main() {
    let harness = HarnessConfig::from_env();
    let data = harness.generate_data();
    let sample_size = 100usize;

    // A deployment-shaped cost model: re-measuring a missing value costs
    // more than reconciling an inconsistency, which costs more than
    // clipping an outlier, plus a fixed per-series visit cost.
    let cost_model = CostModel {
        base_per_series: 2.0,
        per_missing_cell: 3.0,
        per_inconsistent_cell: 2.0,
        per_outlier_cell: 1.0,
        strategy_factors: Vec::new(),
    };
    // Budget ladder in units of the replication sample size, so the
    // frontier shape is comparable across scales.
    let budgets: Vec<f64> = [0.0, 1.0, 3.0, 10.0]
        .iter()
        .map(|m| m * sample_size as f64)
        .collect();

    let config = |policy: SelectionPolicy| {
        let mut experiment = ExperimentConfig::paper_default(sample_size, harness.seed);
        experiment.replications = harness.replications;
        experiment.threads = harness.threads;
        experiment.metrics = DistortionMetric::full_suite();
        BudgetOptimizerConfig {
            experiment,
            strategies: vec![paper_strategy(1)],
            budgets: budgets.clone(),
            cost_model: cost_model.clone(),
            policy,
            distortion_weight: 0.1,
            transport: TransportMode::default(),
        }
    };

    let policies = [
        SelectionPolicy::Greedy,
        SelectionPolicy::DirtiestFirst,
        SelectionPolicy::Random,
    ];
    let mut frontiers: Vec<(SelectionPolicy, Vec<FrontierPoint>)> = Vec::new();
    for policy in policies {
        let points = budget_optimize(&data, &config(policy)).expect("budget optimizer");
        frontiers.push((policy, points));
    }

    // Per-budget mean of a field across one policy's replications.
    let mean_of = |points: &[FrontierPoint], budget: f64, f: &dyn Fn(&FrontierPoint) -> f64| {
        mean_sd(
            &points
                .iter()
                .filter(|p| p.budget == budget)
                .map(f)
                .collect::<Vec<f64>>(),
        )
    };

    let mut json_policies = Vec::new();
    for (policy, points) in &frontiers {
        println!("\n== Budget frontier: {} ==", policy.label());
        println!(
            "{:>8} {:>9} {:>8} {:>12} {:>8} {:>10}",
            "budget", "spent", "series", "improvement", "±sd", "EMD"
        );
        let mut summary = Vec::new();
        for &budget in &budgets {
            let (spent, _) = mean_of(points, budget, &|p| p.spent);
            let (series, _) = mean_of(points, budget, &|p| p.series_cleaned as f64);
            let (mi, si) = mean_of(points, budget, &|p| p.improvement);
            let (md, _) = mean_of(points, budget, &|p| p.distortion);
            println!("{budget:>8.0} {spent:>9.1} {series:>8.1} {mi:>12.3} {si:>8.3} {md:>10.4}");
            summary.push(serde_json::json!({
                "budget": budget,
                "spent_mean": spent,
                "series_cleaned_mean": series,
                "improvement_mean": mi,
                "distortion_mean": md,
            }));
        }
        json_policies.push(serde_json::json!({
            "policy": policy.label(),
            "summary": summary,
            "points": points
                .iter()
                .map(|p| serde_json::json!({
                    "budget": p.budget,
                    "replication": p.replication,
                    "strategy": p.strategy,
                    "spent": p.spent,
                    "series_cleaned": p.series_cleaned,
                    "improvement": p.improvement,
                    "distortions": p.distortions
                        .iter()
                        .map(|s| serde_json::json!({ "metric": s.metric, "value": s.value }))
                        .collect::<Vec<_>>(),
                }))
                .collect::<Vec<_>>(),
        }));
    }

    println!("\n== shape checks ==");
    let curve = |policy: SelectionPolicy| -> Vec<(f64, f64, f64)> {
        let points = &frontiers.iter().find(|(p, _)| *p == policy).unwrap().1;
        budgets
            .iter()
            .map(|&b| {
                let (mi, _) = mean_of(points, b, &|p| p.improvement);
                let (md, _) = mean_of(points, b, &|p| p.distortion);
                (b, mi, md)
            })
            .collect()
    };
    let greedy = curve(SelectionPolicy::Greedy);
    let dirtiest = curve(SelectionPolicy::DirtiestFirst);
    let random = curve(SelectionPolicy::Random);

    shape_check(
        "zero budget buys nothing: no improvement, no distortion",
        greedy[0].1.abs() < 1e-9 && greedy[0].2.abs() < 1e-9,
    );
    shape_check(
        "greedy improvement grows monotonically with budget",
        greedy.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9),
    );
    shape_check(
        "greedy distortion grows with the spend",
        greedy.windows(2).all(|w| w[1].2 >= w[0].2 - 1e-9),
    );
    shape_check(
        "greedy never loses to dirtiest-first at any budget",
        greedy.iter().zip(&dirtiest).all(|(g, d)| g.1 >= d.1 - 1e-9),
    );
    shape_check(
        "greedy never loses to the random control at any budget",
        greedy.iter().zip(&random).all(|(g, r)| g.1 >= r.1 - 1e-9),
    );

    harness.write_json(
        "figure_budget.json",
        &serde_json::json!({
            "sample_size": sample_size,
            "budgets": budgets,
            "cost_model": cost_model.to_json(),
            "distortion_weight": 0.1,
            "metrics": DistortionMetric::full_suite()
                .iter()
                .map(DistortionMetric::name)
                .collect::<Vec<_>>(),
            "policies": json_policies,
        }),
    );
}
