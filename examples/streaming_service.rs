//! The §3.3 pipeline served online — sd-serve end to end.
//!
//! KPI rows arrive one at a time (here: a replay of a generated
//! telemetry stream), are routed to shard threads by tower hash, and
//! accumulate in bounded per-node ring buffers. Each time a window
//! completes, the service screens it, runs every cleaning strategy, and
//! kernel-scores improvement vs distortion — publishing the outcome as
//! a live [`WindowUpdate`] while the stream keeps flowing. The final
//! report is bit-identical to replaying the same rows through the batch
//! `WindowedExperiment`, which this example verifies at the end.
//!
//! Knobs: `SD_SHARDS` (ingestion shards, default 4), `SD_EVALUATORS`
//! (evaluator-pool size, default 2 — any value yields the same
//! bit-identical report; bigger pools only overlap more evaluation with
//! ingestion), `SD_SCALE` (`small` for the 100-sector smoke stream,
//! anything else for the 1 000-sector harness stream).
//!
//! ```text
//! SD_SCALE=small cargo run --release --example streaming_service
//! ```

use statistical_distortion::core::{WindowedConfig, WindowedExperiment};
use statistical_distortion::prelude::*;

fn main() {
    let netsim = match std::env::var("SD_SCALE").as_deref() {
        Ok("small") => NetsimConfig::small(2024),
        _ => NetsimConfig::harness_scale(2024),
    };
    let shards = std::env::var("SD_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let evaluators = std::env::var("SD_EVALUATORS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let data = generate(&netsim).dataset;
    let nodes: Vec<NodeId> = data.series().iter().map(|s| s.node()).collect();
    let attributes: Vec<String> = data.attributes().iter().map(|a| a.name.clone()).collect();
    let rows = stream_rows(&data);

    let config = WindowedConfig::paper_default(30, 30, 42);
    let serve = ServeConfig::new(config.clone(), attributes)
        .with_shards(shards)
        .with_evaluators(evaluators);
    let strategies = vec![paper_strategy(1), paper_strategy(5)];
    println!(
        "stream: {} rows from {} nodes, {} shards, {} evaluators, ring capacity {} rows/node",
        rows.len(),
        nodes.len(),
        shards,
        evaluators,
        serve.ring_capacity(),
    );

    let service =
        StreamingService::launch(serve, nodes, strategies.clone()).expect("service launches");
    for row in rows {
        service.ingest(row).expect("row ingested");
    }
    // Drain whatever windows completed while we were still sending.
    while let Some(update) = service.try_next_window() {
        print_update(&update);
    }
    let report = service.finish().expect("stream finishes");
    let stats = report.stats();
    println!(
        "served {} rows -> {} windows; ring high-water {}/{} rows",
        stats.rows_ingested, stats.windows_evaluated, stats.ring_high_water, stats.ring_capacity,
    );
    let (mean_wait, mean_eval) = stats.mean_lag_us();
    println!(
        "evaluation lag: mean queue-wait {mean_wait:.0} us, mean evaluate {mean_eval:.0} us, \
         max {} windows pending",
        stats.max_pending_windows,
    );
    for lag in &stats.window_lags {
        println!(
            "  window {}: waited {} us, evaluated in {} us",
            lag.window_index, lag.queue_wait_us, lag.evaluate_us,
        );
    }
    for (si, _) in strategies.iter().enumerate() {
        let trajectory = report.trajectory(si);
        let name = &report.outcomes()[si].strategy;
        print!("strategy {name}:");
        for (w, improvement, distortion) in trajectory {
            print!("  [w{w}] imp {improvement:+.1} emd {distortion:.4}");
        }
        println!();
    }

    // The batch replay of the same rows must tell the same story, bit
    // for bit — the serving layer's core contract.
    let batch = WindowedExperiment::new(config)
        .run(&data, &strategies)
        .expect("batch replay succeeds");
    let identical = batch.screens() == report.screens()
        && batch.outcomes().len() == report.outcomes().len()
        && batch
            .outcomes()
            .iter()
            .zip(report.outcomes())
            .all(|(x, y)| {
                x.improvement.to_bits() == y.improvement.to_bits()
                    && x.distortion.to_bits() == y.distortion.to_bits()
            });
    println!(
        "batch replay equivalence: {}",
        if identical {
            "BIT-IDENTICAL"
        } else {
            "DIVERGED"
        }
    );
    if !identical {
        std::process::exit(1);
    }
}

fn print_update(update: &WindowUpdate) {
    let flagged: usize = update.screen.history_flagged.iter().sum::<usize>()
        + update.screen.structural_flagged.iter().sum::<usize>();
    println!(
        "live window {} [{}, {}): {} cells screened out, {} strategies scored",
        update.window_index,
        update.screen.start,
        update.screen.end,
        flagged,
        update.outcomes.len(),
    );
}
