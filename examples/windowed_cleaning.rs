//! Streaming/windowed cleaning evaluation — the §3.3 online formulation
//! as a first-class workload on the staged engine.
//!
//! A window slides over the telemetry stream; inside each window a
//! [`WindowedOutlierDetector`] screens every arrival against its own
//! history, the surviving cells calibrate window-local limits and cleaning
//! context (the streaming analogue of the ideal sample), and each
//! candidate strategy is scored on glitch improvement vs statistical
//! distortion *within that window*. The output is one trajectory per
//! strategy: how the improvement/distortion trade-off evolves as the
//! stream (and its glitch mix) drifts.
//!
//! ```text
//! cargo run --release --example windowed_cleaning
//! ```

use statistical_distortion::core::{WindowedConfig, WindowedExperiment};
use statistical_distortion::prelude::*;

fn main() {
    let data = generate(&NetsimConfig::small(2024)).dataset;
    let horizon = data.series().first().map_or(0, TimeSeries::len);

    let config = WindowedConfig::paper_default(20, 10, 42);
    let experiment = WindowedExperiment::new(config.clone());
    let strategies = [paper_strategy(1), paper_strategy(3), paper_strategy(5)];
    let result = experiment
        .run(&data, &strategies)
        .expect("windowed run succeeds");

    println!(
        "stream: {} series x {} steps; window {} stride {} -> {} windows x {} strategies = {} units",
        data.num_series(),
        horizon,
        config.window,
        config.stride,
        result.num_windows(),
        strategies.len(),
        result.outcomes().len(),
    );

    for (si, strategy) in strategies.iter().enumerate() {
        println!("\nstrategy \"{}\"", strategy.name());
        println!("  window    steps     improvement   distortion   cells changed");
        for o in result.outcomes().iter().filter(|o| o.strategy_index == si) {
            println!(
                "  {:>4}   [{:>3}, {:>3})   {:>11.4}   {:>10.4}   {:>13}",
                o.window_index,
                o.start,
                o.end,
                o.improvement,
                o.distortion,
                o.cleaning.cells_changed(),
            );
        }
        let trajectory = result.trajectory(si);
        let mean_imp =
            trajectory.iter().map(|&(_, imp, _)| imp).sum::<f64>() / trajectory.len() as f64;
        let mean_dist =
            trajectory.iter().map(|&(_, _, d)| d).sum::<f64>() / trajectory.len() as f64;
        println!("  mean: improvement {mean_imp:.4}, distortion {mean_dist:.4}");
    }
}
