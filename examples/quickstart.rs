//! Quickstart: evaluate the paper's five cleaning strategies on synthetic
//! network telemetry using the three-dimensional quality metric.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use statistical_distortion::prelude::*;

fn main() {
    // 1. Generate dirty telemetry: a hierarchical network of sectors, each
    //    emitting (load, volume, ratio) with injected missing values,
    //    inconsistencies, and outlier anomalies.
    let data = generate(&NetsimConfig::harness_scale(7)).dataset;
    println!(
        "generated {} series × {} steps × {} attributes",
        data.num_series(),
        data.series_at(0).len(),
        data.num_attributes()
    );

    // 2. Configure the paper's protocol: R replications of B series each,
    //    3-σ outlier limits calibrated on the ideal sample, glitch weights
    //    (0.25, 0.25, 0.5), EMD distortion.
    let mut config = ExperimentConfig::paper_default(100, 42);
    config.replications = 12; // the paper uses 50; any R > 30 suffices

    // 3. Run all five strategies.
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
    let experiment = Experiment::new(config);
    let result = experiment
        .run(&data, &strategies)
        .expect("experiment should run on generated data");

    // 4. The three-dimensional verdict, strategy by strategy.
    println!(
        "\n{:<34} {:>12} {:>12}",
        "strategy", "improvement", "distortion"
    );
    for (si, strategy) in strategies.iter().enumerate() {
        let (improvement, distortion) = result.mean_point(si).expect("strategy evaluated");
        println!(
            "{:<34} {:>12.3} {:>12.4}",
            strategy.name(),
            improvement,
            distortion
        );
    }

    println!(
        "\nReading: higher improvement is cleaner; lower distortion is \
         more faithful to the original data. The paper's message is that \
         the best strategy balances both — cleaning harder is not always \
         better."
    );
}
