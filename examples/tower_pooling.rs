//! Topology-aware windowed cleaning — the §3.3 scenario where each
//! arrival is screened against the pooled history of its *neighbouring
//! towers*, `f_O(X^t | X^{F^w_t}, X^{F^w_t}_N)`.
//!
//! A synthetic tower topology (4 RNCs × 4 towers × 4 collocated sectors)
//! is generated with tower-correlated glitch bursts, then the same
//! windowed experiment runs under three pooling policies:
//!
//! * **own-only** — each sector judged against its own history (the
//!   pre-topology behaviour);
//! * **tower (1-hop)** — collocated sectors pool their history at equal
//!   weight, so a sector with a short or glitchy past borrows evidence
//!   from its tower;
//! * **weighted** — same-tower history at weight 1, same-RNC history at
//!   weight 0.2, trading neighbourhood size against locality.
//!
//! The example prints per-tower screen trajectories (windows × flagged
//! cells) under each policy and verifies that per-node trajectories and
//! strategy outcomes are bit-identical across thread counts — topology
//! pooling must not cost the engine its determinism.
//!
//! ```text
//! cargo run --release --example tower_pooling
//! ```

use statistical_distortion::core::{
    NeighborPooling, SerialExecutor, WindowedConfig, WindowedExperiment, WindowedResult,
};
use statistical_distortion::prelude::*;

fn run_policy(
    data: &Dataset,
    topology: Topology,
    pooling: NeighborPooling,
    label: &str,
) -> WindowedResult {
    let mut config = WindowedConfig::paper_default(20, 10, 42);
    if !matches!(pooling, NeighborPooling::OwnOnly) {
        config = config.with_topology(topology, pooling);
    }
    config.threads = 2;
    let experiment = WindowedExperiment::new(config);
    let strategies = [paper_strategy(5)];
    let result = experiment.run(data, &strategies).expect("windowed run");

    // Determinism: the threaded run must match a serial run bit for bit —
    // per-node screen trajectories and strategy outcomes alike.
    let serial = experiment
        .run_with(data, &strategies, &SerialExecutor)
        .expect("serial run");
    assert_eq!(result.screens(), serial.screens(), "{label}: screens");
    for (a, b) in result.outcomes().iter().zip(serial.outcomes()) {
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
    }
    for i in 0..data.num_series() {
        assert_eq!(
            result.node_trajectory(i),
            serial.node_trajectory(i),
            "{label}: node {i} trajectory"
        );
    }
    result
}

fn main() {
    // A tower-heavy shape: few sectors per tower matter less than having
    // many towers whose sectors fail together.
    let topology = Topology::new(4, 4, 4);
    let config = NetsimConfig::for_topology(topology, 60, 7);
    let data = generate(&config).dataset;

    println!(
        "topology: {} RNCs x {} towers x {} sectors = {} series, {} steps each\n",
        topology.rncs,
        topology.towers_per_rnc,
        topology.sectors_per_tower,
        data.num_series(),
        config.series_len,
    );

    let policies = [
        ("own-only", NeighborPooling::OwnOnly),
        ("tower (1-hop)", NeighborPooling::KHop { hops: 1 }),
        (
            "weighted (tower 1.0, rnc 0.2)",
            NeighborPooling::Weighted {
                tower: 1.0,
                rnc: 0.2,
            },
        ),
    ];

    let mut mean_distortion = Vec::new();
    for (label, pooling) in policies {
        let result = run_policy(&data, topology, pooling, label);
        println!("policy: {label}");
        println!("  history-screened cells per tower (rows) and window (columns):");
        for tower in 0..topology.num_towers() {
            let per_window: Vec<usize> = result
                .screens()
                .iter()
                .map(|s| {
                    data.series()
                        .iter()
                        .enumerate()
                        .filter(|(_, series)| topology.tower_index(series.node()) == tower)
                        .map(|(i, _)| s.history_flagged[i])
                        .sum()
                })
                .collect();
            println!("  tower {tower:>2}: {per_window:?}");
        }
        let traj = result.trajectory(0);
        let n = traj.len() as f64;
        let imp = traj.iter().map(|&(_, i, _)| i).sum::<f64>() / n;
        let dist = traj.iter().map(|&(_, _, d)| d).sum::<f64>() / n;
        println!("  strategy 5 means: improvement {imp:.4}, distortion {dist:.4}\n");
        mean_distortion.push((label, dist));
    }

    println!("pooling changes the screen, the pseudo-ideal, and the scores:");
    for (label, dist) in mean_distortion {
        println!("  {label:<32} mean distortion {dist:.4}");
    }
    println!("\nall policies verified bit-identical across thread counts");
}
