//! Extending the framework with a custom cleaning strategy and a custom
//! glitch rule, then scoring it against the paper's strategies.
//!
//! The framework is designed to be user-extensible (§2.1.6 "Customizable"):
//! any type implementing `CleaningStrategy` can be evaluated, and
//! constraint rules are plain data.
//!
//! ```text
//! cargo run --release --example custom_strategy
//! ```

use rand::RngCore;
use statistical_distortion::cleaning::CleaningOutcome;
use statistical_distortion::prelude::*;

/// A median-anchored repair: replaces missing/inconsistent cells with the
/// per-attribute *median* of the values observed in the same series —
/// cheaper than model imputation, more local than a global mean.
struct SeriesMedianImpute;

impl CleaningStrategy for SeriesMedianImpute {
    fn name(&self) -> String {
        "series-median impute".into()
    }

    fn clean(
        &self,
        data: &mut Dataset,
        glitches: &[statistical_distortion::glitch::GlitchMatrix],
        _ctx: &CleaningContext,
        _rng: &mut dyn RngCore,
    ) -> CleaningOutcome {
        let mut outcome = CleaningOutcome::default();
        let v = data.num_attributes();
        for (series, g) in data.series_mut().iter_mut().zip(glitches) {
            for a in 0..v {
                let median = statistical_distortion::stats::quantile(series.attribute(a), 0.5);
                let Some(median) = median else { continue };
                for t in 0..series.len() {
                    let treat =
                        g.get(a, GlitchType::Missing, t) || g.get(a, GlitchType::Inconsistent, t);
                    if treat {
                        series.set(a, t, median);
                        outcome.mean_imputed_cells += 1;
                    }
                }
            }
        }
        outcome
    }
}

fn main() {
    let data = generate(&NetsimConfig::harness_scale(55)).dataset;

    // A customized rule set: the paper's three rules plus a volume floor.
    let mut rules = ConstraintSet::paper_rules(0, 2).constraints().to_vec();
    rules.push(Constraint::NonNegative { attr: 1 });
    let constraints = ConstraintSet::new(rules);

    let mut config = ExperimentConfig::paper_default(80, 9);
    config.replications = 8;
    config.constraints = constraints.clone();

    // Score the built-in strategies through the framework...
    let builtin: Vec<_> = vec![paper_strategy(2), paper_strategy(4)];
    let experiment = Experiment::new(config.clone());
    let result = experiment.run(&data, &builtin).expect("experiment runs");

    println!(
        "{:<28} {:>12} {:>12}",
        "strategy", "improvement", "distortion"
    );
    for (si, s) in builtin.iter().enumerate() {
        let (imp, dist) = result.mean_point(si).unwrap();
        println!("{:<28} {:>12.3} {:>12.4}", s.name(), imp, dist);
    }

    // ...and the custom strategy through the same replication pipeline.
    let prepared = experiment.prepare(&data).expect("prepare");
    let custom = SeriesMedianImpute;
    let index = GlitchIndex::new(config.weights);
    let (mut imp_acc, mut dist_acc) = (0.0, 0.0);
    for i in 0..config.replications {
        let artifacts = prepared.replication(i);
        let mut cleaned = artifacts.dirty.clone();
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        custom.clean(
            &mut cleaned,
            &artifacts.dirty_matrices,
            &artifacts.context,
            &mut rng,
        );
        let treated = artifacts.redetect(&cleaned);
        imp_acc += index.improvement(&artifacts.dirty_matrices, &treated);
        dist_acc += statistical_distortion::core::statistical_distortion(
            &artifacts.dirty,
            &cleaned,
            prepared.transforms(),
            config.metrics[0],
        )
        .expect("distortion");
    }
    let n = config.replications as f64;
    println!(
        "{:<28} {:>12.3} {:>12.4}",
        custom.name(),
        imp_acc / n,
        dist_acc / n
    );

    println!(
        "\nReading: the custom repair slots into the identical protocol, \
         so its (improvement, distortion) point is directly comparable \
         with the paper's strategies."
    );
}
