//! Network-monitoring scenario: detect and score glitches on a live-style
//! telemetry feed, then decide how much cleaning the budget should buy.
//!
//! This walks the paper's motivating use case end to end: annotate the
//! stream with the three detectors (§3.3), inspect glitch co-occurrence
//! (§4.2 / Figure 3), rank the dirtiest sectors, and run the §5.2 cost
//! sweep to find the point of diminishing returns.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use statistical_distortion::glitch::{co_occurrence, counts_per_time};
use statistical_distortion::prelude::*;

fn main() {
    let generated = generate(&NetsimConfig::harness_scale(123));
    let data = generated.dataset;

    // --- Detection ------------------------------------------------------
    // Identify the ideal partition (< 5 % of each glitch type per series),
    // then fit 3-σ limits on it.
    let transforms = vec![
        AttributeTransform::log(), // load: heavy-tailed, work in log space
        AttributeTransform::Identity,
        AttributeTransform::Identity,
    ];
    let constraints = ConstraintSet::paper_rules(0, 2);
    let partition = partition_ideal(&data, &constraints, &transforms, 3.0, 0.05)
        .expect("telemetry contains both clean and dirty sectors");
    println!(
        "partition: {} ideal series, {} dirty series",
        partition.ideal_indices.len(),
        partition.dirty_indices.len()
    );

    let ideal = partition.ideal_dataset(&data);
    let dirty = partition.dirty_dataset(&data);
    let detector = GlitchDetector::new(
        constraints,
        Some(OutlierDetector::fit(&ideal, &transforms, 3.0)),
    );
    let matrices = detector.detect_dataset(&dirty);

    // --- Glitch anatomy ---------------------------------------------------
    let report = GlitchReport::from_matrices(&matrices);
    println!(
        "\nrecord-level glitch rates: missing {:.1} %, inconsistent {:.1} %, outliers {:.1} %",
        report.record_percentage(GlitchType::Missing),
        report.record_percentage(GlitchType::Inconsistent),
        report.record_percentage(GlitchType::Outlier),
    );
    let co = co_occurrence(&matrices, GlitchType::Missing, GlitchType::Inconsistent);
    println!(
        "missing ∩ inconsistent: {:.1} % of records (Jaccard {:.2}) — the \
         cross-attribute rule makes them co-occur",
        100.0 * co.both,
        co.jaccard
    );

    // Figure-3-style burst texture: peak glitch load over time.
    let missing_series = counts_per_time(&matrices, GlitchType::Missing, 170);
    let peak = missing_series.iter().max().copied().unwrap_or(0);
    println!("peak per-step missing count across the dirty partition: {peak}");

    // --- Who is dirtiest? -------------------------------------------------
    let index = GlitchIndex::new(GlitchWeights::paper());
    let ranked = index.rank_dirtiest(&matrices);
    println!("\nthree dirtiest sectors:");
    for &i in ranked.iter().take(3) {
        println!(
            "  {}  (normalized glitch score {:.3})",
            dirty.series_at(i).node(),
            index.node_score(&matrices[i])
        );
    }

    // --- How much cleaning should the budget buy? -------------------------
    let mut experiment = ExperimentConfig::paper_default(100, 31);
    experiment.replications = 8;
    let sweep = CostSweepConfig {
        experiment,
        fractions: vec![0.0, 0.2, 0.5, 1.0],
        strategies: vec![paper_strategy(1)],
        transport: TransportMode::Cold,
    };
    let points = cost_sweep(&data, &sweep).expect("cost sweep");
    println!("\ncost sweep (strategy 1 = winsorize + impute):");
    println!(
        "{:>10} {:>12} {:>12}",
        "% cleaned", "improvement", "distortion"
    );
    for &fraction in &[0.0, 0.2, 0.5, 1.0] {
        let (mut imp, mut dist, mut n) = (0.0, 0.0, 0);
        for p in points.iter().filter(|p| p.fraction == fraction) {
            imp += p.improvement;
            dist += p.distortion;
            n += 1;
        }
        let n = n.max(1) as f64;
        println!(
            "{:>10.0} {:>12.3} {:>12.4}",
            fraction * 100.0,
            imp / n,
            dist / n
        );
    }
    println!(
        "\nReading: if the improvement curve flattens past 50 % cleaned \
         while distortion keeps growing, cleaning the remaining half of \
         the sectors buys little — the paper's §5.6 conclusion."
    );
}
