//! Metric ablation: score the paper's five cleaning strategies under all
//! six distortion kernels — EMD (the paper's choice), KL divergence,
//! Mahalanobis, Kolmogorov–Smirnov, Cramér–von Mises, and energy distance
//! — over **one** replication set. Detection and cleaning run once per
//! `(replication, strategy)` unit; every kernel scores the same cleaned
//! patch incrementally, so the whole ablation costs roughly one
//! experiment run instead of six.
//!
//! CleanML-style motivation: conclusions about a cleaning strategy can
//! flip with the evaluation measure. Printing the full strategy × metric
//! grid makes the sensitivity visible at a glance.
//!
//! ```text
//! SD_SCALE=small cargo run --release --example metric_ablation
//! ```

use statistical_distortion::prelude::*;

fn main() {
    let small = std::env::var("SD_SCALE").is_ok_and(|v| v == "small");
    let data = if small {
        generate(&NetsimConfig::small(21)).dataset
    } else {
        generate(&NetsimConfig::harness_scale(21)).dataset
    };

    let mut config = ExperimentConfig::paper_default(if small { 20 } else { 100 }, 21);
    config.replications = if small { 4 } else { 12 };
    config.metrics = DistortionMetric::full_suite();

    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
    let result = Experiment::new(config.clone())
        .run(&data, &strategies)
        .expect("multi-metric experiment should run");

    // The strategy × metric grid of mean distortions.
    let metric_names = result.metrics().to_vec();
    print!("{:<34} {:>12}", "strategy", "improvement");
    for name in &metric_names {
        print!(" {name:>12}");
    }
    println!();
    for (si, strategy) in strategies.iter().enumerate() {
        let (improvement, _) = result.mean_point(si).expect("strategy evaluated");
        print!("{:<34} {improvement:>12.3}", strategy.name());
        for mi in 0..metric_names.len() {
            let (_, distortion) = result
                .mean_point_for_metric(si, mi)
                .expect("metric evaluated");
            print!(" {distortion:>12.4}");
        }
        println!();
    }

    // Every kernel must order the no-op-ish spectrum sanely: all scores
    // finite and non-negative, recorded per outcome in config order.
    for outcome in result.outcomes() {
        assert_eq!(outcome.distortions.len(), metric_names.len());
        assert_eq!(outcome.distortion, outcome.distortions[0].value);
        for score in &outcome.distortions {
            assert!(
                score.value.is_finite() && score.value >= 0.0,
                "{} gave {}",
                score.metric,
                score.value
            );
        }
    }

    // The multi-metric run's primary (EMD) column is bit-identical to a
    // dedicated single-metric run — scoring five extra kernels may not
    // perturb the paper's metric.
    let mut single = config;
    single.metrics = vec![DistortionMetric::paper_default()];
    let emd_only = Experiment::new(single)
        .run(&data, &strategies)
        .expect("single-metric experiment should run");
    for (multi, solo) in result.outcomes().iter().zip(emd_only.outcomes()) {
        assert_eq!(multi.distortion.to_bits(), solo.distortion.to_bits());
    }
    println!(
        "\nverified: the multi-metric run's EMD column is bit-identical to \
         a dedicated EMD-only run ({} outcomes × {} metrics from one \
         cleaning pass each).",
        result.outcomes().len(),
        metric_names.len()
    );

    println!(
        "\nReading: row order can change column to column — the choice of \
         distance is part of the experimental design, which is why the \
         engine scores every requested kernel from the same cleaning pass."
    );
}
