//! Budget-constrained cleaning: spend a fixed repair budget where it buys
//! the most glitch improvement per unit of statistical distortion.
//!
//! Prices come from a [`CostModel`] (per-glitch-kind cell prices, round-
//! tripped through its JSON schema the way a deployment would configure
//! it); the greedy optimizer is compared against the paper's §5.2
//! dirtiest-first ordering and a random control at every budget, and the
//! greedy frontier is re-validated bit-for-bit against the fully
//! materialized reference path.
//!
//! ```text
//! SD_SCALE=small cargo run --release --example budget_optimizer
//! ```

use statistical_distortion::prelude::*;

fn main() {
    let small = std::env::var("SD_SCALE").is_ok_and(|v| v == "small");
    let data = if small {
        generate(&NetsimConfig::small(17)).dataset
    } else {
        generate(&NetsimConfig::harness_scale(17)).dataset
    };

    let mut experiment = ExperimentConfig::paper_default(if small { 15 } else { 60 }, 17);
    experiment.replications = if small { 2 } else { 6 };

    // A deployment-shaped cost model: re-measuring a missing value is
    // pricier than clipping an outlier, and there is a fixed per-series
    // visit cost. Configured as JSON, exactly like an ops pipeline would.
    let cost_model = CostModel::from_json_str(
        r#"{
            "base_per_series": 2.0,
            "per_missing_cell": 3.0,
            "per_inconsistent_cell": 2.0,
            "per_outlier_cell": 1.0
        }"#,
    )
    .expect("well-formed cost model");

    let budgets = vec![0.0, 40.0, 120.0, 400.0];
    let config = |policy: SelectionPolicy| BudgetOptimizerConfig {
        experiment: experiment.clone(),
        strategies: vec![paper_strategy(1)],
        budgets: budgets.clone(),
        cost_model: cost_model.clone(),
        policy,
        distortion_weight: 0.1,
        transport: TransportMode::default(),
    };

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>12} {:>12}",
        "policy", "budget", "spent", "series", "improvement", "distortion"
    );
    let mut frontiers = Vec::new();
    for policy in [
        SelectionPolicy::Greedy,
        SelectionPolicy::DirtiestFirst,
        SelectionPolicy::Random,
    ] {
        let points = statistical_distortion::core::budget_optimize(&data, &config(policy))
            .expect("budget optimization should run");
        for &budget in &budgets {
            let at: Vec<&FrontierPoint> = points.iter().filter(|p| p.budget == budget).collect();
            let n = at.len() as f64;
            let spent = at.iter().map(|p| p.spent).sum::<f64>() / n;
            let series = at.iter().map(|p| p.series_cleaned).sum::<usize>();
            let improvement = at.iter().map(|p| p.improvement).sum::<f64>() / n;
            let distortion = at.iter().map(|p| p.distortion).sum::<f64>() / n;
            println!(
                "{:<16} {budget:>8.0} {spent:>8.1} {series:>8} {improvement:>12.3} {distortion:>12.4}",
                policy.label()
            );
        }
        frontiers.push(points);
    }

    // The greedy engine path must match the materialized reference bit
    // for bit — same trajectory, same scores.
    let reference = statistical_distortion::core::budget_optimize_reference(
        &data,
        &config(SelectionPolicy::Greedy),
    )
    .expect("reference path should run");
    assert_eq!(reference.len(), frontiers[0].len());
    for (a, b) in reference.iter().zip(&frontiers[0]) {
        assert_eq!(a.series_cleaned, b.series_cleaned);
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
    }

    // At every budget the greedy mean improvement dominates the random
    // control and never loses to dirtiest-first on this instance.
    for (bi, &budget) in budgets.iter().enumerate() {
        let mean = |points: &[FrontierPoint]| {
            let at: Vec<f64> = points
                .iter()
                .filter(|p| p.budget == budget)
                .map(|p| p.improvement)
                .collect();
            at.iter().sum::<f64>() / at.len() as f64
        };
        let (greedy, dirtiest, random) = (
            mean(&frontiers[0]),
            mean(&frontiers[1]),
            mean(&frontiers[2]),
        );
        assert!(
            greedy >= dirtiest - 1e-9 && greedy >= random - 1e-9,
            "greedy lost at budget {budget} (index {bi}): {greedy} vs {dirtiest} / {random}"
        );
    }
    println!("\ngreedy frontier verified bit-identical to the materialized reference");
}
