//! Streaming outlier detection with windowed history and neighbour
//! pooling — the §3.3 online formulation
//! `f_O(X^t | X^{F^w_t}, X^{F^w_t}_N)`.
//!
//! A sector's arrival is judged against its own `w`-step history plus the
//! history of collocated sectors (antennas on the same tower), which
//! catches local anomalies that a global rule misses and suppresses false
//! alarms when the whole tower shifts together.
//!
//! ```text
//! cargo run --release --example streaming_outliers
//! ```

use statistical_distortion::glitch::WindowedOutlierDetector;
use statistical_distortion::prelude::*;

fn main() {
    let generated = generate(&NetsimConfig::harness_scale(2024));
    let data = generated.dataset;
    let topology = Topology::new(5, 20, 10); // matches harness_scale

    let detector = WindowedOutlierDetector::new(24, 3.0);

    // Pick one tower and stream its sectors jointly.
    let tower_nodes: Vec<NodeId> = (0..10).map(|k| NodeId::new(2, 7, k)).collect();
    let series: Vec<&TimeSeries> = tower_nodes
        .iter()
        .map(|&n| data.series_for(n).expect("sector exists"))
        .collect();

    let mut alarms_solo = 0usize;
    let mut alarms_pooled = 0usize;
    let len = series[0].len();
    for (si, s) in series.iter().enumerate() {
        let neighbors: Vec<&TimeSeries> = series
            .iter()
            .enumerate()
            .filter(|&(sj, _)| sj != si)
            .map(|(_, t)| *t)
            .collect();
        for t in 0..len {
            if detector.is_outlier(s, &[], 0, t) {
                alarms_solo += 1;
            }
            if detector.is_outlier(s, &neighbors, 0, t) {
                alarms_pooled += 1;
            }
        }
    }
    let cells = series.len() * len;
    println!(
        "tower N2.7: {} sectors × {} steps = {} load readings",
        series.len(),
        len,
        cells
    );
    println!(
        "own-history alarms:      {alarms_solo} ({:.2} %)",
        100.0 * alarms_solo as f64 / cells as f64
    );
    println!(
        "neighbour-pooled alarms: {alarms_pooled} ({:.2} %)",
        100.0 * alarms_pooled as f64 / cells as f64
    );

    // Compare against the batch detector calibrated on the ideal set.
    let transforms = vec![
        AttributeTransform::log(),
        AttributeTransform::Identity,
        AttributeTransform::Identity,
    ];
    let constraints = ConstraintSet::paper_rules(0, 2);
    let partition =
        partition_ideal(&data, &constraints, &transforms, 3.0, 0.05).expect("partition exists");
    let ideal = partition.ideal_dataset(&data);
    let batch = OutlierDetector::fit(&ideal, &transforms, 3.0);
    let mut alarms_batch = 0usize;
    for s in &series {
        for t in 0..len {
            if batch.is_outlier(0, s.get(0, t)) {
                alarms_batch += 1;
            }
        }
    }
    println!(
        "batch 3-σ alarms (ideal-calibrated): {alarms_batch} ({:.2} %)",
        100.0 * alarms_batch as f64 / cells as f64
    );

    // The p-value output lets operators tune thresholds post hoc (§3.3).
    let example_value = series[0].get(0, len / 2);
    if let Some(p) = batch.p_value(0, example_value) {
        println!(
            "\nexample: load {example_value:.1} at t={} has two-sided p-value {p:.4}",
            len / 2
        );
    }
    let _ = topology;
}
