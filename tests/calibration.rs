//! Calibration: the generated telemetry's detected glitch rates must land
//! near the paper's Table 1 "Dirty" columns at full series length.
//!
//! Detection-only (no cleaning), so this stays fast in debug builds.

use statistical_distortion::prelude::*;

fn detected_rates(log: bool) -> (f64, f64, f64) {
    // 200 series × 170 steps, the paper's series length.
    let config = NetsimConfig {
        topology: Topology::new(2, 10, 10),
        series_len: 170,
        seed: 97,
        dirty_tower_fraction: 0.5,
        rates: GlitchRates::default(),
        kpi: statistical_distortion::netsim::KpiParams::default(),
    };
    let data = generate(&config).dataset;
    let transforms = vec![
        if log {
            AttributeTransform::log()
        } else {
            AttributeTransform::Identity
        },
        AttributeTransform::Identity,
        AttributeTransform::Identity,
    ];
    let constraints = ConstraintSet::paper_rules(0, 2);
    let partition = partition_ideal(&data, &constraints, &transforms, 3.0, 0.05).unwrap();
    let ideal = partition.ideal_dataset(&data);
    let dirty = partition.dirty_dataset(&data);
    let detector = GlitchDetector::new(
        constraints,
        Some(OutlierDetector::fit(&ideal, &transforms, 3.0)),
    );
    let report = GlitchReport::from_matrices(&detector.detect_dataset(&dirty));
    (
        report.record_percentage(GlitchType::Missing),
        report.record_percentage(GlitchType::Inconsistent),
        report.record_percentage(GlitchType::Outlier),
    )
}

#[test]
fn dirty_rates_match_table1_log_block() {
    let (missing, inconsistent, outliers) = detected_rates(true);
    // Paper: 15.80 / 15.88 / 16.77 (n=100, log).
    assert!((missing - 15.8).abs() < 4.0, "missing {missing}");
    assert!(
        (inconsistent - 15.9).abs() < 4.0,
        "inconsistent {inconsistent}"
    );
    assert!((outliers - 16.8).abs() < 5.0, "outliers {outliers}");
    // Missing and inconsistent co-occur (near-equal rates).
    assert!((missing - inconsistent).abs() < 3.0);
}

#[test]
fn dirty_rates_match_table1_raw_block() {
    let (missing, inconsistent, outliers) = detected_rates(false);
    // Paper: 15.80 / 15.88 / 5.07 (n=100, no log).
    assert!((missing - 15.8).abs() < 4.0, "missing {missing}");
    assert!(
        (inconsistent - 15.9).abs() < 4.0,
        "inconsistent {inconsistent}"
    );
    assert!(
        outliers < 13.0,
        "raw outliers should be far below log: {outliers}"
    );
}

#[test]
fn log_flags_more_outliers_than_raw() {
    let (_, _, log_out) = detected_rates(true);
    let (_, _, raw_out) = detected_rates(false);
    assert!(
        log_out > 1.3 * raw_out,
        "log {log_out} should far exceed raw {raw_out}"
    );
}
