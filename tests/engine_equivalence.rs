//! Engine regression: the staged `(replication, strategy)`-unit engine
//! behind [`Experiment::run`] must reproduce the historical
//! replication-granular runner **bit for bit** for a fixed seed.
//!
//! The reference is [`PreparedExperiment::evaluate`], which still scores a
//! unit the pre-engine way — full dirty-sample clone, per-strategy model
//! fit, full re-detection, uncached distortion — and is kept exactly for
//! this cross-check (the figure generators use it too).

use statistical_distortion::core::{PreparedExperiment, SerialExecutor, StrategyOutcome};
use statistical_distortion::prelude::*;

fn reference_outcomes(
    prepared: &PreparedExperiment,
    strategies: &[CompositeStrategy],
) -> Vec<StrategyOutcome> {
    let mut outcomes = Vec::new();
    for i in 0..prepared.config().replications {
        let artifacts = prepared.replication(i);
        for (si, s) in strategies.iter().enumerate() {
            outcomes.push(prepared.evaluate(&artifacts, s, si).unwrap());
        }
    }
    outcomes
}

fn assert_bit_identical(reference: &[StrategyOutcome], engine: &[StrategyOutcome], label: &str) {
    assert_eq!(reference.len(), engine.len(), "{label}: outcome count");
    for (r, e) in reference.iter().zip(engine) {
        assert_eq!(
            r.distortions.len(),
            e.distortions.len(),
            "{label}: metric count"
        );
        for (rm, em) in r.distortions.iter().zip(&e.distortions) {
            assert_eq!(rm.metric, em.metric, "{label}: metric order");
            assert_eq!(
                rm.value.to_bits(),
                em.value.to_bits(),
                "{label}: {} distortion of {} rep {}",
                rm.metric,
                r.strategy,
                r.replication
            );
        }
        assert_eq!(r.replication, e.replication, "{label}: replication order");
        assert_eq!(
            r.strategy_index, e.strategy_index,
            "{label}: strategy order"
        );
        assert_eq!(r.strategy, e.strategy, "{label}: strategy name");
        assert_eq!(
            r.improvement.to_bits(),
            e.improvement.to_bits(),
            "{label}: improvement of {} rep {}",
            r.strategy,
            r.replication
        );
        assert_eq!(
            r.distortion.to_bits(),
            e.distortion.to_bits(),
            "{label}: distortion of {} rep {}",
            r.strategy,
            r.replication
        );
        assert_eq!(r.cleaning, e.cleaning, "{label}: cleaning counters");
        assert_eq!(
            r.dirty_report.record_pct, e.dirty_report.record_pct,
            "{label}: dirty report"
        );
        assert_eq!(
            r.treated_report.record_pct, e.treated_report.record_pct,
            "{label}: treated report"
        );
        assert_eq!(
            r.treated_report.cell_pct, e.treated_report.cell_pct,
            "{label}: treated cell report"
        );
    }
}

#[test]
fn engine_outcomes_are_bit_identical_to_the_reference_runner() {
    let data = generate(&NetsimConfig::small(131)).dataset;
    let mut config = ExperimentConfig::paper_default(20, 131);
    config.replications = 4;
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();

    let experiment = Experiment::new(config.clone());
    let prepared = experiment.prepare(&data).unwrap();
    let reference = reference_outcomes(&prepared, &strategies);

    for threads in [1usize, 2] {
        let mut c = config.clone();
        c.threads = threads;
        let engine = Experiment::new(c).run(&data, &strategies).unwrap();
        assert_bit_identical(&reference, engine.outcomes(), &format!("threads={threads}"));
    }

    // And on the serial executor, which exercises the same staged path
    // without any scheduling at all.
    let serial = experiment
        .run_with(&data, &strategies, &SerialExecutor)
        .unwrap();
    assert_bit_identical(&reference, serial.outcomes(), "serial executor");
}

#[test]
fn engine_equivalence_holds_without_the_log_factor_and_across_metrics() {
    let data = generate(&NetsimConfig::small(17)).dataset;
    for (log, metric) in [
        (false, DistortionMetric::paper_default()),
        (true, DistortionMetric::KlDivergence { bins: 8 }),
        (true, DistortionMetric::Mahalanobis),
    ] {
        let mut config = ExperimentConfig::paper_default(15, 23);
        config.replications = 2;
        config.log_transform_attr1 = log;
        config.metrics = vec![metric];
        config.threads = 2;
        let strategies = [paper_strategy(1), paper_strategy(4)];

        let experiment = Experiment::new(config);
        let prepared = experiment.prepare(&data).unwrap();
        let reference = reference_outcomes(&prepared, &strategies);
        let engine = experiment.run(&data, &strategies).unwrap();
        assert_bit_identical(&reference, engine.outcomes(), &format!("{metric:?}"));
    }
}

#[test]
fn multi_metric_engine_scores_every_kernel_bit_identically() {
    // One cleaning pass per unit, all six kernels scored incrementally —
    // each must match the reference path's materialized per-metric
    // evaluation bit for bit, across thread counts.
    let data = generate(&NetsimConfig::small(59)).dataset;
    let mut config = ExperimentConfig::paper_default(15, 59);
    config.replications = 2;
    config.metrics = DistortionMetric::full_suite();
    config.threads = 2;
    let strategies = [paper_strategy(1), paper_strategy(5)];

    let experiment = Experiment::new(config.clone());
    let prepared = experiment.prepare(&data).unwrap();
    let reference = reference_outcomes(&prepared, &strategies);
    let engine = experiment.run(&data, &strategies).unwrap();
    assert_eq!(
        engine.metrics(),
        ["emd", "kl", "mahalanobis", "ks", "cvm", "energy"]
    );
    assert_bit_identical(&reference, engine.outcomes(), "full suite");
    // The primary column is the first metric, and a single-metric run of
    // the same seed reproduces it exactly (the multi-metric refactor may
    // not perturb single-metric outputs).
    let mut single = config;
    single.metrics = vec![DistortionMetric::paper_default()];
    let single_run = Experiment::new(single).run(&data, &strategies).unwrap();
    for (m, s) in engine.outcomes().iter().zip(single_run.outcomes()) {
        assert_eq!(m.distortion.to_bits(), m.distortions[0].value.to_bits());
        assert_eq!(m.distortion.to_bits(), s.distortion.to_bits());
    }
    let serial = experiment
        .run_with(&data, &strategies, &SerialExecutor)
        .unwrap();
    assert_bit_identical(&reference, serial.outcomes(), "full suite serial");
}
