//! Property-based invariants of the cleaning pipeline: winsorization
//! idempotence and boundedness, mean-imputation completeness, and the
//! precedence contract between imputation and winsorization.

use proptest::prelude::*;
use statistical_distortion::cleaning::{CleaningContext, Winsorizer};
use statistical_distortion::prelude::*;

fn context_from(values: &[f64], transform: AttributeTransform) -> Option<CleaningContext> {
    let mut series = TimeSeries::new(NodeId::new(0, 0, 0), 1, values.len());
    for (t, &v) in values.iter().enumerate() {
        series.set(0, t, v);
    }
    let ds = Dataset::new(vec!["a"], vec![series]).ok()?;
    Some(CleaningContext::fit(&ds, &[transform], 3.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn winsorization_is_idempotent(
        ideal in prop::collection::vec(-100.0f64..100.0, 5..40),
        x in -10_000.0f64..10_000.0,
    ) {
        let ctx = context_from(&ideal, AttributeTransform::Identity).unwrap();
        let wz = Winsorizer::from_context(&ctx);
        let once = wz.repair(0, x);
        let twice = wz.repair(0, once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
        // And the repaired value is never outlying.
        prop_assert!(!wz.is_outlying(0, once));
    }

    #[test]
    fn winsorization_never_widens(
        ideal in prop::collection::vec(-100.0f64..100.0, 5..40),
        x in -10_000.0f64..10_000.0,
    ) {
        let ctx = context_from(&ideal, AttributeTransform::Identity).unwrap();
        let wz = Winsorizer::from_context(&ctx);
        let repaired = wz.repair(0, x);
        let (lo, hi) = ctx.limits()[0];
        prop_assert!(repaired >= lo - 1e-9 && repaired <= hi + 1e-9);
        // Values already inside the limits pass through untouched.
        if x >= lo && x <= hi {
            prop_assert_eq!(repaired.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn log_winsorization_preserves_positivity(
        ideal in prop::collection::vec(0.5f64..1000.0, 5..40),
        x in prop::num::f64::POSITIVE.prop_filter("finite", |v| v.is_finite()),
    ) {
        let ctx = context_from(&ideal, AttributeTransform::log()).unwrap();
        let wz = Winsorizer::from_context(&ctx);
        let repaired = wz.repair(0, x);
        prop_assert!(repaired > 0.0, "log-space repair must stay positive: {repaired}");
    }

    #[test]
    fn mean_imputation_completes_every_treated_cell(
        missing_at in prop::collection::btree_set(0usize..30, 1..10),
    ) {
        // A clean ideal and a dirty copy with injected missing cells.
        let values: Vec<f64> = (0..30).map(|t| 10.0 + t as f64).collect();
        let ctx = context_from(&values, AttributeTransform::Identity).unwrap();

        let mut dirty_series = TimeSeries::new(NodeId::new(0, 0, 1), 1, 30);
        for (t, &v) in values.iter().enumerate() {
            dirty_series.set(0, t, v);
        }
        for &t in &missing_at {
            dirty_series.set_missing(0, t);
        }
        let mut dirty = Dataset::new(vec!["a"], vec![dirty_series]).unwrap();
        let detector = GlitchDetector::new(ConstraintSet::default(), None);
        let matrices = detector.detect_dataset(&dirty);

        let mut rng = rand::rngs::mock::StepRng::new(1, 7);
        let outcome = paper_strategy(4).clean(&mut dirty, &matrices, &ctx, &mut rng);
        prop_assert_eq!(outcome.mean_imputed_cells, missing_at.len());
        for t in 0..30 {
            prop_assert!(!dirty.series_at(0).is_missing(0, t));
        }
    }
}
