//! Property-based tests (proptest) on the workspace's core invariants:
//! EMD metric axioms, solver agreement, glitch-index algebra, and
//! cleaning idempotence.

use proptest::prelude::*;
use statistical_distortion::emd::{
    emd, emd_1d_weighted, ground_distance_matrix, BatchTransport, MinCostFlow, Signature,
    TransportProblem,
};
use statistical_distortion::glitch::{GlitchIndex, GlitchMatrix, GlitchType, GlitchWeights};
use statistical_distortion::stats::{quantile, sorted_present, Ecdf};

/// A random 1-D signature: points in [-50, 50], weights in (0, 10].
fn signature_1d(max_len: usize) -> impl Strategy<Value = Signature> {
    prop::collection::vec((-50.0f64..50.0, 0.01f64..10.0), 1..max_len).prop_map(|pairs| {
        let (points, weights): (Vec<Vec<f64>>, Vec<f64>) =
            pairs.into_iter().map(|(p, w)| (vec![p], w)).unzip();
        Signature::new(points, weights).expect("valid signature")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emd_is_nonnegative_and_zero_on_self(sig in signature_1d(12)) {
        let d = emd(&sig, &sig).unwrap();
        prop_assert!(d >= 0.0);
        prop_assert!(d < 1e-9, "self-distance {d}");
    }

    #[test]
    fn emd_is_symmetric(a in signature_1d(10), b in signature_1d(10)) {
        let ab = emd(&a, &b).unwrap();
        let ba = emd(&b, &a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-8, "{ab} vs {ba}");
    }

    #[test]
    fn emd_satisfies_triangle_inequality(
        a in signature_1d(8),
        b in signature_1d(8),
        c in signature_1d(8),
    ) {
        let ab = emd(&a, &b).unwrap();
        let bc = emd(&b, &c).unwrap();
        let ac = emd(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-8, "ac {ac} > ab {ab} + bc {bc}");
    }

    #[test]
    fn simplex_flow_meets_marginals(
        supply in prop::collection::vec(0.001f64..1.0, 1..24),
        demand in prop::collection::vec(0.001f64..1.0, 1..24),
        seed in 0u64..1000,
    ) {
        // The solved flow of a random balanced instance must satisfy the
        // row/column marginals to 1e-9 — floating-point residue from the
        // north-west-corner walk may not strand mass.
        let st: f64 = supply.iter().sum();
        let dt: f64 = demand.iter().sum();
        let supply: Vec<f64> = supply.iter().map(|x| x / st).collect();
        let demand: Vec<f64> = demand.iter().map(|x| x / dt).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut cost = Vec::with_capacity(supply.len() * demand.len());
        for _ in 0..supply.len() * demand.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cost.push(((state >> 33) as f64) / (u32::MAX as f64) * 5.0);
        }
        let (n, m) = (supply.len(), demand.len());
        let mut problem = TransportProblem::new(supply.clone(), demand.clone(), cost).unwrap();
        problem.solve().unwrap();
        let flow = problem.flow();
        for i in 0..n {
            let row: f64 = flow[i * m..(i + 1) * m].iter().sum();
            prop_assert!((row - supply[i]).abs() < 1e-9, "row {i}: {row} vs {}", supply[i]);
        }
        for j in 0..m {
            let col: f64 = (0..n).map(|i| flow[i * m + j]).sum();
            prop_assert!((col - demand[j]).abs() < 1e-9, "col {j}: {col} vs {}", demand[j]);
        }
    }

    #[test]
    fn simplex_matches_1d_closed_form(
        a in prop::collection::vec((-20.0f64..20.0, 0.01f64..5.0), 1..10),
        b in prop::collection::vec((-20.0f64..20.0, 0.01f64..5.0), 1..10),
    ) {
        let (ap, aw): (Vec<f64>, Vec<f64>) = a.into_iter().unzip();
        let (bp, bw): (Vec<f64>, Vec<f64>) = b.into_iter().unzip();
        let exact = emd_1d_weighted(&ap, &aw, &bp, &bw).unwrap();
        let a_sig = Signature::new(ap.iter().map(|&x| vec![x]).collect(), aw.clone()).unwrap();
        let b_sig = Signature::new(bp.iter().map(|&x| vec![x]).collect(), bw.clone()).unwrap();
        let cost = ground_distance_matrix(a_sig.points(), b_sig.points());
        let via_simplex = TransportProblem::new(
            a_sig.normalized_weights(),
            b_sig.normalized_weights(),
            cost,
        )
        .unwrap()
        .solve()
        .unwrap();
        prop_assert!((exact - via_simplex).abs() < 1e-8, "{exact} vs {via_simplex}");
    }

    #[test]
    fn translation_shifts_emd_linearly(
        points in prop::collection::vec(-10.0f64..10.0, 2..20),
        delta in 0.1f64..30.0,
    ) {
        let shifted: Vec<f64> = points.iter().map(|x| x + delta).collect();
        let d = statistical_distortion::emd::emd_1d_samples(&points, &shifted).unwrap();
        prop_assert!((d - delta).abs() < 1e-9, "shift {delta} gave EMD {d}");
    }

    #[test]
    fn ecdf_is_monotone(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let e = Ecdf::new(&xs);
        let sorted = sorted_present(&xs);
        let mut prev = 0.0;
        for &x in &sorted {
            let f = e.eval(x);
            prop_assert!(f >= prev);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert_eq!(e.eval(f64::INFINITY), 1.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-100.0f64..100.0, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min && b <= max);
    }

    #[test]
    fn glitch_index_is_monotone_in_flags(
        len in 1usize..40,
        flags in prop::collection::vec((0usize..3, 0usize..40), 0..30),
    ) {
        let index = GlitchIndex::new(GlitchWeights::paper());
        let mut m = GlitchMatrix::new(1, len);
        let mut prev = 0.0;
        for (k, t) in flags {
            let g = GlitchType::from_index(k).unwrap();
            m.set(0, g, t % len);
            let score = index.node_score(&m);
            prop_assert!(score >= prev - 1e-12, "score decreased: {score} < {prev}");
            prev = score;
        }
    }

    #[test]
    fn improvement_is_antisymmetric(
        flags_a in prop::collection::vec((0usize..3, 0usize..20), 0..20),
        flags_b in prop::collection::vec((0usize..3, 0usize..20), 0..20),
    ) {
        let build = |flags: &[(usize, usize)]| {
            let mut m = GlitchMatrix::new(1, 20);
            for &(k, t) in flags {
                m.set(0, GlitchType::from_index(k).unwrap(), t % 20);
            }
            vec![m]
        };
        let index = GlitchIndex::new(GlitchWeights::paper());
        let a = build(&flags_a);
        let b = build(&flags_b);
        let ab = index.improvement(&a, &b);
        let ba = index.improvement(&b, &a);
        prop_assert!((ab + ba).abs() < 1e-12);
    }
}

/// Case count for the min-cost-flow cross-validation corpus. The
/// bipartite-specialized successive-shortest-paths solver (see
/// `sd_emd::MinCostFlow`) is fast enough that the full corpus runs on
/// every `cargo test` — no `SD_SCALE` gate.
fn flow_corpus_config() -> ProptestConfig {
    ProptestConfig::with_cases(64)
}

proptest! {
    #![proptest_config(flow_corpus_config())]

    #[test]
    fn simplex_matches_flow_solver(
        supply in prop::collection::vec(0.01f64..1.0, 1..8),
        demand in prop::collection::vec(0.01f64..1.0, 1..8),
        seed in 0u64..1000,
    ) {
        // Balance the problem.
        let st: f64 = supply.iter().sum();
        let dt: f64 = demand.iter().sum();
        let supply: Vec<f64> = supply.iter().map(|x| x / st).collect();
        let demand: Vec<f64> = demand.iter().map(|x| x / dt).collect();
        // Deterministic pseudo-random costs from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut cost = Vec::with_capacity(supply.len() * demand.len());
        for _ in 0..supply.len() * demand.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cost.push(((state >> 33) as f64) / (u32::MAX as f64) * 5.0);
        }
        let via_simplex = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        let via_flow = MinCostFlow::new(supply, demand, cost).unwrap().solve().unwrap();
        prop_assert!((via_simplex - via_flow).abs() < 1e-7, "{via_simplex} vs {via_flow}");
    }

    #[test]
    fn simplex_survives_degenerate_duplicate_mass_instances(
        supply in prop::collection::vec(1u8..=4, 2..8),
        demand in prop::collection::vec(1u8..=4, 2..8),
        seed in 0u64..1000,
    ) {
        // Small-integer masses make ties and exactly-zero basic flows (the
        // degenerate pivots the basis-tree ratio test must survive —
        // regression cover for the structured `BrokenPivot` path replacing
        // the old `leaving.expect(...)` panic), and small-integer costs
        // make many equal-cost pivots. Normalize to unit mass and demand
        // simplex/flow agreement with no panic on every instance.
        let st: f64 = supply.iter().map(|&x| x as f64).sum();
        let dt: f64 = demand.iter().map(|&x| x as f64).sum();
        let supply: Vec<f64> = supply.iter().map(|&x| x as f64 / st).collect();
        let demand: Vec<f64> = demand.iter().map(|&x| x as f64 / dt).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut cost = Vec::with_capacity(supply.len() * demand.len());
        for _ in 0..supply.len() * demand.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cost.push(((state >> 33) % 3) as f64);
        }
        let via_simplex = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
            .unwrap()
            .solve()
            .unwrap();
        let via_flow = MinCostFlow::new(supply, demand, cost).unwrap().solve().unwrap();
        prop_assert!((via_simplex - via_flow).abs() < 1e-7, "{via_simplex} vs {via_flow}");
    }

    #[test]
    fn warm_batch_transport_matches_cold_solves(
        supply in prop::collection::vec(1u8..=4, 2..10),
        demand in prop::collection::vec(1u8..=4, 2..10),
        seed in 0u64..1000,
    ) {
        // A warm-started `BatchTransport` chain over one fixed dirty
        // signature and a drifting cleaned signature — the engine's batch
        // shape — must match independent cold solves within the documented
        // objective contract, `1e-9 · (1 + |cold|)`. Small-integer masses
        // make degenerate duplicate-mass instances (ties, zero basic
        // flows), the regime that historically broke pivots; infeasible
        // inherited bases must fall back to a cold solve cleanly rather
        // than erroring.
        let st: f64 = supply.iter().map(|&x| x as f64).sum();
        let dt: f64 = demand.iter().map(|&x| x as f64).sum();
        let supply: Vec<f64> = supply.iter().map(|&x| x as f64 / st).collect();
        let mut demand: Vec<f64> = demand.iter().map(|&x| x as f64 / dt).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let cost: Vec<f64> = (0..supply.len() * demand.len())
            .map(|_| (next() * 3.0).floor())
            .collect();
        let mut batch = BatchTransport::new();
        for round in 0..6 {
            if round > 0 {
                // Drift the cleaned masses: move a slice of demand between
                // two cells (keeps totals balanced, support identical —
                // the warm-startable shape). Every other round drifts by
                // zero, an exact duplicate of the previous instance.
                let a = (next() * demand.len() as f64) as usize % demand.len();
                let b = (next() * demand.len() as f64) as usize % demand.len();
                let slice = if round % 2 == 0 { demand[a] * 0.25 } else { 0.0 };
                demand[a] -= slice;
                demand[b] += slice;
            }
            let warm = batch.solve(&supply, &demand, &cost).unwrap();
            let cold = TransportProblem::new(supply.clone(), demand.clone(), cost.clone())
                .unwrap()
                .solve()
                .unwrap();
            prop_assert!(
                (warm - cold).abs() <= 1e-9 * (1.0 + cold.abs()),
                "round {round}: warm {warm} vs cold {cold}"
            );
        }
        let stats = batch.stats();
        prop_assert_eq!(stats.solves, 6);
        prop_assert_eq!(stats.warm_hits + stats.fallbacks, 5, "{:?}", stats);
    }

    #[test]
    fn chained_grid_ladder_matches_unchained_within_contract(
        seed in 0u64..10_000,
        links in 2usize..8,
    ) {
        // A random fraction ladder through the grid pipeline's chained
        // entry point: link k cleans the first k·(rows/links) rows of a
        // random dirty cloud toward a fixed target, every link scored on
        // ONE warm arena. The occupied-cell sets drift link to link —
        // the chain frame re-anchors or rebuilds as needed — and every
        // chained result must stay within the warm objective contract of
        // the bit-exact unchained pipeline.
        use statistical_distortion::emd::{GridEmd, PatchedCloud, SignatureCache};

        let rows = 60usize;
        let base = kernel_cloud(seed, rows);
        let target = kernel_cloud(seed ^ 0x00C1_EA17, rows);
        let cache = SignatureCache::new(base.clone());
        let g = GridEmd::new(7);
        let mut arena = BatchTransport::new();
        for link in 1..=links {
            let cleaned = (rows * link / links).max(1);
            let edits: Vec<(usize, Vec<f64>)> = target
                .iter()
                .take(cleaned)
                .cloned()
                .enumerate()
                .collect();
            let patched = PatchedCloud::new(&cache, edits);
            let cold = g.distance_patched(&patched);
            let warm = g.distance_patched_with(&patched, &mut arena);
            match (cold, warm) {
                (Ok(c), Ok(w)) => {
                    prop_assert_eq!(c.solver, w.solver, "link {}", link);
                    prop_assert!(
                        (w.emd - c.emd).abs() <= 1e-9 * (1.0 + c.emd.abs()),
                        "link {}: chained {} vs cold {}", link, w.emd, c.emd
                    );
                }
                (Err(_), Err(_)) => {} // both paths reject (e.g. all-NaN edits)
                (cold, warm) => prop_assert!(
                    false,
                    "link {}: one path failed, the other did not ({:?} vs {:?})",
                    link, cold, warm
                ),
            }
        }
    }
}

/// Builds a random cleaning scenario: correlated two-attribute telemetry
/// with injected missing cells, negative inconsistencies, and spikes, plus
/// the calibrated detector/context the strategies need.
fn cleaning_fixture(
    seed: u64,
) -> (
    statistical_distortion::data::Dataset,
    Vec<GlitchMatrix>,
    statistical_distortion::cleaning::CleaningContext,
) {
    use rand::Rng;
    use statistical_distortion::cleaning::CleaningContext;
    use statistical_distortion::data::{Dataset, NodeId, TimeSeries};
    use statistical_distortion::glitch::{
        Constraint, ConstraintSet, GlitchDetector, OutlierDetector,
    };
    use statistical_distortion::stats::AttributeTransform;

    let mut rng = proptest::seed_for("cleaning_fixture", seed);
    let transforms = [AttributeTransform::Identity, AttributeTransform::Identity];

    let mut ideal_series = TimeSeries::new(NodeId::new(0, 0, 0), 2, 40);
    for t in 0..40 {
        let x = 100.0 + rng.gen_range(-5.0..5.0);
        ideal_series.set(0, t, x);
        ideal_series.set(1, t, 0.5 * x + rng.gen_range(-1.0..1.0));
    }
    let ideal = Dataset::new(vec!["a", "b"], vec![ideal_series]).unwrap();

    let num_series = 1 + (seed as usize % 3);
    let mut series = Vec::new();
    for i in 0..num_series {
        let mut s = TimeSeries::new(NodeId::new(0, 0, 1 + i as u32), 2, 40);
        for t in 0..40 {
            let x = 100.0 + rng.gen_range(-5.0..5.0);
            s.set(0, t, x);
            s.set(1, t, 0.5 * x + rng.gen_range(-1.0..1.0));
        }
        // Inject glitches at random cells.
        for _ in 0..rng.gen_range(0..8usize) {
            let (a, t) = (rng.gen_range(0..2usize), rng.gen_range(0..40usize));
            match rng.gen_range(0..3u32) {
                0 => s.set_missing(a, t),
                1 => s.set(0, t, -rng.gen_range(1.0f64..50.0)), // inconsistent
                _ => s.set(a, t, 2000.0 + rng.gen_range(0.0f64..100.0)), // spike
            }
        }
        series.push(s);
    }
    let dirty = Dataset::new(vec!["a", "b"], series).unwrap();

    let detector = GlitchDetector::new(
        ConstraintSet::new(vec![Constraint::NonNegative { attr: 0 }]),
        Some(OutlierDetector::fit(&ideal, &transforms, 3.0)),
    );
    let glitches = detector.detect_dataset(&dirty);
    let ctx = CleaningContext::fit(&ideal, &transforms, 3.0);
    (dirty, glitches, ctx)
}

/// A random working-space cloud for the kernel equivalence property:
/// `rows × 3` values spanning several scales, with occasional NaN gaps
/// (missing cells survive pooling as NaN).
fn kernel_cloud(seed: u64, rows: usize) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..rows)
        .map(|_| {
            (0..3)
                .map(|k| {
                    let x = next();
                    if x < 0.04 {
                        f64::NAN
                    } else {
                        x * [120.0, 9.0, 1.5][k] - [10.0, 0.0, 0.7][k]
                    }
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every distortion kernel's incremental `score_patch` path must be
    /// bit-identical to its materialized `score_rows` path (the
    /// patch-vs-clone pattern, extended from cleaning to scoring): random
    /// dirty cloud, random sparse row edits, all six kernels.
    #[test]
    fn kernel_score_patch_is_bit_identical_to_materialized(
        seed in 0u64..5_000,
        rows in 8usize..80,
        num_edits in 0usize..24,
    ) {
        use statistical_distortion::core::DistortionMetric;
        use statistical_distortion::emd::{PatchedCloud, SignatureCache};

        let base = kernel_cloud(seed, rows);
        // Distinct edit rows with fresh values (and occasional NaN).
        let replacements = kernel_cloud(seed ^ 0xFEED, num_edits.min(rows));
        let edits: Vec<(usize, Vec<f64>)> = replacements
            .into_iter()
            .enumerate()
            .map(|(i, row)| ((i * 7 + seed as usize) % rows, row))
            .collect::<std::collections::BTreeMap<usize, Vec<f64>>>()
            .into_iter()
            .collect();

        let cache = SignatureCache::new(base.clone());
        let patched = PatchedCloud::new(&cache, edits);
        let materialized = patched.materialize();
        for metric in DistortionMetric::full_suite() {
            let kernel = metric.kernel();
            let fast = kernel.prepare(&cache).score_patch(&patched);
            let direct = kernel.score_rows(&base, &materialized);
            match (fast, direct) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} diverged: patched {} vs materialized {}",
                    kernel.name(),
                    a,
                    b
                ),
                (Err(_), Err(_)) => {} // both paths reject (e.g. too few complete rows)
                (fast, direct) => prop_assert!(
                    false,
                    "{}: one path failed, the other did not ({:?} vs {:?})",
                    kernel.name(),
                    fast,
                    direct
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine's cell-patch cleaning must equal the full-clone in-place
    /// cleaning for random data and random strategies: same outcome
    /// counters, and the materialized copy-on-write view (and its replayed
    /// patch) bit-identical to the in-place result.
    #[test]
    fn cell_patch_view_equals_full_clone_clean(
        seed in 0u64..10_000,
        missing_kind in 0u32..3,
        outlier_kind in 0u32..2,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use statistical_distortion::cleaning::{
            CompositeStrategy, MissingTreatment, OutlierTreatment,
        };

        let (dirty, glitches, ctx) = cleaning_fixture(seed);
        let strategy = CompositeStrategy::new(
            match missing_kind {
                0 => MissingTreatment::Ignore,
                1 => MissingTreatment::MeanImpute,
                _ => MissingTreatment::ModelImpute,
            },
            if outlier_kind == 0 {
                OutlierTreatment::Ignore
            } else {
                OutlierTreatment::Winsorize
            },
        );

        let mut in_place = dirty.clone();
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0x5EED);
        let out_a = {
            use statistical_distortion::cleaning::CleaningStrategy;
            strategy.clean(&mut in_place, &glitches, &ctx, &mut rng_a)
        };

        let mut rng_b = StdRng::seed_from_u64(seed ^ 0x5EED);
        let (view, out_b) = strategy.clean_patch(&dirty, &glitches, &ctx, &mut rng_b, None);

        prop_assert_eq!(out_a, out_b, "cleaning counters diverge");
        prop_assert!(
            view.to_dataset().same_data(&in_place),
            "materialized view diverges from in-place clean"
        );
        prop_assert!(
            view.patch().apply_to(&dirty).same_data(&in_place),
            "replayed patch diverges from in-place clean"
        );
        // Untouched series must stay borrows of the base (no silent clones).
        for i in 0..dirty.num_series() {
            prop_assert_eq!(view.is_patched(i), view.patch().is_touched(i));
            if !view.is_patched(i) {
                prop_assert!(dirty.series_at(i).same_data(view.series_at(i)));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Streaming determinism: whatever the arrival interleaving, shard
    /// count, and channel capacity, the service's trajectory is
    /// bit-identical to the batch replay of the same rows. The arrival
    /// order is the adversarial input — shard threads race on the wall
    /// clock, but the outcome may not.
    #[test]
    fn streaming_trajectories_survive_arrival_order_and_sharding(
        interleave_seed in 0u64..100_000,
        shard_choice in 0usize..4,
        capacity in 1usize..64,
    ) {
        use statistical_distortion::core::{WindowedConfig, WindowedExperiment, WindowedResult};
        use statistical_distortion::netsim::stream_rows_interleaved;
        use statistical_distortion::prelude::*;
        use std::sync::OnceLock;

        static REFERENCE: OnceLock<(Dataset, WindowedResult)> = OnceLock::new();
        let (data, batch) = REFERENCE.get_or_init(|| {
            let data = generate(&NetsimConfig::small(13)).dataset;
            let config = WindowedConfig::paper_default(20, 15, 13);
            let batch = WindowedExperiment::new(config)
                .run(&data, &[paper_strategy(5)])
                .expect("reference batch run");
            (data, batch)
        });

        let shards = [1, 2, 4, 8][shard_choice];
        let config = WindowedConfig::paper_default(20, 15, 13);
        let attributes = data.attributes().iter().map(|a| a.name.clone()).collect();
        let serve = ServeConfig::new(config, attributes)
            .with_shards(shards)
            .with_channel_capacity(capacity);
        let nodes = data.series().iter().map(|s| s.node()).collect();
        let service = StreamingService::launch(serve, nodes, vec![paper_strategy(5)])
            .expect("launch");
        for row in stream_rows_interleaved(data, interleave_seed) {
            service.ingest(row).expect("ingest");
        }
        let report = service.finish().expect("finish");

        prop_assert_eq!(batch.screens(), report.screens());
        prop_assert_eq!(batch.outcomes().len(), report.outcomes().len());
        for (x, y) in batch.outcomes().iter().zip(report.outcomes()) {
            prop_assert_eq!(x.window_index, y.window_index);
            prop_assert_eq!(x.improvement.to_bits(), y.improvement.to_bits(),
                "improvement, window {}", x.window_index);
            prop_assert_eq!(x.distortion.to_bits(), y.distortion.to_bits(),
                "distortion, window {}", x.window_index);
            prop_assert_eq!(&x.cleaning, &y.cleaning);
        }
        prop_assert!(report.stats().ring_high_water <= report.stats().ring_capacity);
    }

    /// The pipelined collector under adversarial scheduling: random
    /// per-window evaluation latencies scramble completion order inside
    /// pools of 1, 2 and 4 workers across shard counts, yet the live feed
    /// publishes strictly in window order and the report stays
    /// bit-identical to the pool-size-1 reference.
    #[test]
    fn pipelined_publication_is_in_order_and_pool_invariant(
        jitter_seed in 0u64..100_000,
        pool_choice in 0usize..3,
        shard_choice in 0usize..4,
    ) {
        use statistical_distortion::core::WindowedConfig;
        use statistical_distortion::prelude::*;
        use std::sync::OnceLock;

        static REFERENCE: OnceLock<(Dataset, StreamReport)> = OnceLock::new();
        let (data, reference) = REFERENCE.get_or_init(|| {
            let data = generate(&NetsimConfig::small(23)).dataset;
            let config = WindowedConfig::paper_default(20, 15, 23);
            let attributes = data.attributes().iter().map(|a| a.name.clone()).collect();
            let serve = ServeConfig::new(config, attributes)
                .with_shards(1)
                .with_evaluators(1);
            let nodes = data.series().iter().map(|s| s.node()).collect();
            let service = StreamingService::launch(serve, nodes, vec![paper_strategy(2)])
                .expect("reference launch");
            for row in stream_rows(&data) {
                service.ingest(row).expect("reference ingest");
            }
            let report = service.finish().expect("reference finish");
            (data, report)
        });

        let evaluators = [1, 2, 4][pool_choice];
        let shards = [1, 2, 4, 8][shard_choice];
        let config = WindowedConfig::paper_default(20, 15, 23);
        let attributes = data.attributes().iter().map(|a| a.name.clone()).collect();
        let serve = ServeConfig::new(config, attributes)
            .with_shards(shards)
            .with_evaluators(evaluators)
            .with_evaluation_jitter(jitter_seed, 800);
        let nodes = data.series().iter().map(|s| s.node()).collect();
        let service = StreamingService::launch(serve, nodes, vec![paper_strategy(2)])
            .expect("launch");
        let mut live = Vec::new();
        for row in stream_rows(data) {
            service.ingest(row).expect("ingest");
            while let Some(update) = service.try_next_window() {
                live.push(update.window_index);
            }
        }
        while let Some(update) = service.try_next_window() {
            live.push(update.window_index);
        }
        let report = service.finish().expect("finish");

        // Whatever completion order the jitter forced, publication is
        // strictly window 0, 1, 2, … — live feed and lag log alike.
        prop_assert_eq!(&live[..], &(0..live.len()).collect::<Vec<_>>()[..]);
        for (i, lag) in report.stats().window_lags.iter().enumerate() {
            prop_assert_eq!(lag.window_index, i);
        }
        prop_assert_eq!(report.screens(), reference.screens());
        prop_assert_eq!(report.outcomes().len(), reference.outcomes().len());
        for (x, y) in reference.outcomes().iter().zip(report.outcomes()) {
            prop_assert_eq!(x.improvement.to_bits(), y.improvement.to_bits(),
                "improvement, window {}", x.window_index);
            prop_assert_eq!(x.distortion.to_bits(), y.distortion.to_bits(),
                "distortion, window {}", x.window_index);
        }
        prop_assert!(
            report.stats().max_pending_windows <= 2 * evaluators + 1,
            "depth {} with {} evaluators", report.stats().max_pending_windows, evaluators
        );
    }
}
