//! Serving-layer fault and resource contracts: bounded channels apply
//! backpressure instead of dropping rows, per-node ring memory stays at
//! its configured bound no matter how long the stream runs, and shard
//! failures — structured errors and outright thread panics — surface as
//! `FrameworkError::ShardFailed` without wedging the service.

use statistical_distortion::core::{FrameworkError, WindowedConfig, WindowedExperiment};
use statistical_distortion::prelude::*;
use statistical_distortion::serve::shard_of;

fn nodes_of(data: &Dataset) -> Vec<NodeId> {
    data.series().iter().map(|s| s.node()).collect()
}

fn attributes_of(data: &Dataset) -> Vec<String> {
    data.attributes().iter().map(|a| a.name.clone()).collect()
}

/// Capacity-1 channels everywhere: every send can block, so if the
/// service dropped rows under a full channel this stream could not
/// reproduce the batch outcomes or the exact ingestion counter.
#[test]
fn capacity_one_channels_block_rather_than_drop() {
    let data = generate(&NetsimConfig::small(83)).dataset;
    let strategies = [paper_strategy(5)];
    let config = WindowedConfig::paper_default(20, 10, 83);
    let batch = WindowedExperiment::new(config.clone())
        .run(&data, &strategies)
        .unwrap();
    let serve = ServeConfig::new(config, attributes_of(&data))
        .with_shards(4)
        .with_channel_capacity(1);
    let service = StreamingService::launch(serve, nodes_of(&data), strategies.to_vec()).unwrap();
    for row in stream_rows(&data) {
        service.ingest(row).unwrap();
    }
    let report = service.finish().unwrap();
    assert_eq!(report.stats().rows_ingested as usize, data.num_records());
    assert_eq!(report.num_windows(), batch.screens().len());
    for (x, y) in batch.outcomes().iter().zip(report.outcomes()) {
        assert_eq!(x.distortion.to_bits(), y.distortion.to_bits());
        assert_eq!(x.improvement.to_bits(), y.improvement.to_bits());
    }
}

/// A stream 30× longer than the window: ring occupancy must peak at the
/// configured `2 · window` bound, not grow with the stream.
#[test]
fn ring_memory_is_bounded_by_geometry_not_stream_length() {
    let config = NetsimConfig::for_topology(Topology::new(1, 2, 2), 300, 9);
    let data = generate(&config).dataset;
    let windowed = WindowedConfig::paper_default(10, 5, 9);
    let serve = ServeConfig::new(windowed, attributes_of(&data)).with_shards(2);
    let ring_capacity = serve.ring_capacity();
    assert_eq!(ring_capacity, 20);
    let service =
        StreamingService::launch(serve, nodes_of(&data), vec![paper_strategy(1)]).unwrap();
    for row in stream_rows(&data) {
        service.ingest(row).unwrap();
    }
    let report = service.finish().unwrap();
    assert_eq!(report.num_windows(), (300 - 10) / 5 + 1);
    assert!(
        report.stats().ring_high_water <= ring_capacity,
        "ring occupancy {} exceeded the configured bound {ring_capacity}",
        report.stats().ring_high_water
    );
    // The bound is also tight: full windows really do pass through.
    assert!(report.stats().ring_high_water >= 10);
}

/// A row for a node the service was never configured with is a
/// structured shard failure, not a panic or a silent drop.
#[test]
fn unknown_node_surfaces_as_shard_failed() {
    let data = generate(&NetsimConfig::small(17)).dataset;
    let config = WindowedConfig::paper_default(20, 10, 17);
    let serve = ServeConfig::new(config, attributes_of(&data)).with_shards(2);
    let service =
        StreamingService::launch(serve, nodes_of(&data), vec![paper_strategy(1)]).unwrap();
    let intruder = NodeId::new(900, 900, 900);
    let row = statistical_distortion::data::ArrivalRow {
        node: intruder,
        t: 0,
        values: vec![1.0, 1.0, 0.5],
    };
    // The first send reaches the shard, which rejects it and shuts down;
    // the failure surfaces at finish (and on any later send to the shard).
    service.ingest(row).unwrap();
    match service.finish() {
        Err(FrameworkError::ShardFailed { shard, detail }) => {
            assert_eq!(shard, shard_of(intruder, 2));
            assert!(detail.contains("does not own it"), "detail: {detail}");
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
}

/// Rows must arrive in per-node time order; a gap is a structured
/// failure naming the offending shard.
#[test]
fn out_of_order_row_surfaces_as_shard_failed() {
    let data = generate(&NetsimConfig::small(17)).dataset;
    let nodes = nodes_of(&data);
    let config = WindowedConfig::paper_default(20, 10, 17);
    let serve = ServeConfig::new(config, attributes_of(&data)).with_shards(2);
    let service = StreamingService::launch(serve, nodes.clone(), vec![paper_strategy(1)]).unwrap();
    let row = statistical_distortion::data::ArrivalRow {
        node: nodes[0],
        t: 5,
        values: vec![1.0, 1.0, 0.5],
    };
    service.ingest(row).unwrap();
    match service.finish() {
        Err(FrameworkError::ShardFailed { shard, detail }) => {
            assert_eq!(shard, shard_of(nodes[0], 2));
            assert!(detail.contains("out of order"), "detail: {detail}");
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
}

/// A panicking shard thread (here: a malformed row tripping the ring's
/// arity assertion) must not wedge the service: later sends to the dead
/// shard fail fast with `ShardFailed`, and `finish` reports the panic as
/// a structured error rather than hanging or unwinding.
#[test]
fn panicking_shard_surfaces_as_shard_failed_without_hanging() {
    let data = generate(&NetsimConfig::small(29)).dataset;
    let nodes = nodes_of(&data);
    let config = WindowedConfig::paper_default(20, 10, 29);
    let serve = ServeConfig::new(config, attributes_of(&data)).with_shards(2);
    let service = StreamingService::launch(serve, nodes.clone(), vec![paper_strategy(1)]).unwrap();
    let victim = nodes[0];
    let bad = statistical_distortion::data::ArrivalRow {
        node: victim,
        t: 0,
        values: vec![1.0], // three attributes expected — panics the ring
    };
    service.ingest(bad).unwrap();
    // Keep feeding the dead shard until its channel reports the death;
    // bounded retries prove the producer is unblocked, not hung.
    let mut observed = None;
    for _ in 0..10_000 {
        let probe = statistical_distortion::data::ArrivalRow {
            node: victim,
            t: 1,
            values: vec![1.0, 1.0, 0.5],
        };
        if let Err(e) = service.ingest(probe) {
            observed = Some(e);
            break;
        }
    }
    match observed {
        Some(FrameworkError::ShardFailed { shard, .. }) => {
            assert_eq!(shard, shard_of(victim, 2));
        }
        other => panic!("expected ShardFailed from ingest, got {other:?}"),
    }
    match service.finish() {
        Err(FrameworkError::ShardFailed { shard, detail }) => {
            assert_eq!(shard, shard_of(victim, 2));
            assert!(detail.contains("panicked"), "detail: {detail}");
        }
        other => panic!("expected ShardFailed from finish, got {other:?}"),
    }
}

/// A panicking evaluator worker — induced via the config's fault hook —
/// must surface from `finish` as a structured
/// `FrameworkError::EvaluatorFailed`, not a hang: the producer keeps
/// ingesting, the surviving workers drain, and the dead worker is
/// reported by index.
#[test]
fn panicking_evaluator_surfaces_as_evaluator_failed_without_hanging() {
    let data = generate(&NetsimConfig::small(41)).dataset;
    let config = WindowedConfig::paper_default(20, 10, 41);
    for evaluators in [1, 3] {
        let serve = ServeConfig::new(config.clone(), attributes_of(&data))
            .with_shards(2)
            .with_evaluators(evaluators)
            .with_evaluator_panic_at(1);
        let service =
            StreamingService::launch(serve, nodes_of(&data), vec![paper_strategy(1)]).unwrap();
        for row in stream_rows(&data) {
            service.ingest(row).unwrap();
        }
        match service.finish() {
            Err(FrameworkError::EvaluatorFailed { evaluator, detail }) => {
                assert!(evaluator < evaluators, "worker index out of pool range");
                assert!(detail.contains("panicked"), "detail: {detail}");
            }
            other => panic!("expected EvaluatorFailed with {evaluators} workers, got {other:?}"),
        }
    }
}

/// Launch-time validation: impossible geometries and duplicate nodes are
/// rejected before any thread spawns.
#[test]
fn launch_rejects_invalid_configurations() {
    let data = generate(&NetsimConfig::small(3)).dataset;
    let nodes = nodes_of(&data);
    let attrs = attributes_of(&data);
    let config = WindowedConfig::paper_default(20, 10, 3);

    let no_shards = ServeConfig::new(config.clone(), attrs.clone()).with_shards(0);
    assert!(matches!(
        StreamingService::launch(no_shards, nodes.clone(), vec![paper_strategy(1)]),
        Err(FrameworkError::InvalidConfig(_))
    ));

    let no_capacity = ServeConfig::new(config.clone(), attrs.clone()).with_channel_capacity(0);
    assert!(matches!(
        StreamingService::launch(no_capacity, nodes.clone(), vec![paper_strategy(1)]),
        Err(FrameworkError::InvalidConfig(_))
    ));

    let ok = ServeConfig::new(config.clone(), attrs.clone());
    assert!(matches!(
        StreamingService::launch(ok.clone(), nodes.clone(), vec![]),
        Err(FrameworkError::InvalidConfig(_))
    ));

    let mut twice = nodes.clone();
    twice.push(nodes[0]);
    assert!(matches!(
        StreamingService::launch(ok, twice, vec![paper_strategy(1)]),
        Err(FrameworkError::InvalidConfig(_))
    ));
}
