//! Cross-crate integration: the full §4 protocol from telemetry generation
//! through strategy scoring, exercised end to end.

use statistical_distortion::prelude::*;

fn small_experiment(log: bool, seed: u64) -> (Dataset, ExperimentConfig) {
    let data = generate(&NetsimConfig::small(seed)).dataset;
    let mut config = ExperimentConfig::paper_default(15, seed);
    config.replications = 3;
    config.log_transform_attr1 = log;
    config.threads = 2;
    (data, config)
}

#[test]
fn five_strategies_produce_finite_scores() {
    let (data, config) = small_experiment(true, 11);
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
    let result = Experiment::new(config).run(&data, &strategies).unwrap();
    assert_eq!(result.outcomes().len(), 15);
    for o in result.outcomes() {
        assert!(o.improvement.is_finite());
        assert!(o.distortion.is_finite() && o.distortion >= 0.0);
        assert!(o.dirty_report.total_records > 0);
    }
}

#[test]
fn composite_strategies_dominate_components_in_improvement() {
    let (data, config) = small_experiment(true, 23);
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
    let result = Experiment::new(config).run(&data, &strategies).unwrap();
    let mean = |si: usize| result.mean_point(si).unwrap().0;
    // Strategy 1 (winsorize+impute) > strategy 2 (impute only);
    // strategy 5 (winsorize+mean) > strategy 4 (mean only).
    assert!(mean(0) > mean(1), "s1 {} vs s2 {}", mean(0), mean(1));
    assert!(mean(4) > mean(3), "s5 {} vs s4 {}", mean(4), mean(3));
}

#[test]
fn full_cleaning_strategies_clear_their_targets() {
    let (data, config) = small_experiment(true, 37);
    let strategies = [paper_strategy(5)];
    let result = Experiment::new(config).run(&data, &strategies).unwrap();
    for o in result.outcomes() {
        // Mean replacement erases missing and inconsistent completely…
        assert_eq!(o.treated_report.record_percentage(GlitchType::Missing), 0.0);
        assert_eq!(
            o.treated_report.record_percentage(GlitchType::Inconsistent),
            0.0
        );
        // …and value-based winsorization leaves no outliers behind.
        assert_eq!(o.treated_report.record_percentage(GlitchType::Outlier), 0.0);
    }
}

#[test]
fn experiments_are_deterministic_per_seed() {
    let (data, config) = small_experiment(false, 41);
    let strategies = [paper_strategy(1), paper_strategy(4)];
    let a = Experiment::new(config.clone())
        .run(&data, &strategies)
        .unwrap();
    let b = Experiment::new(config).run(&data, &strategies).unwrap();
    for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(x.improvement, y.improvement);
        assert_eq!(x.distortion, y.distortion);
        assert_eq!(x.cleaning, y.cleaning);
    }
}

#[test]
fn determinism_is_bit_identical_across_runs_and_thread_counts() {
    // Regression guard for the runner: outcomes must not depend on worker
    // scheduling. The work-stealing loop reassembles results in replication
    // order, so one seed must yield bit-identical floats for any thread
    // count and across repeated runs.
    let (data, config) = small_experiment(true, 97);
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();

    let run_with_threads = |threads: usize| {
        let mut c = config.clone();
        c.threads = threads;
        Experiment::new(c).run(&data, &strategies).unwrap()
    };

    let single = run_with_threads(1);
    let again = run_with_threads(1);
    let dual = run_with_threads(2);
    assert_eq!(single.outcomes().len(), dual.outcomes().len());
    for ((a, b), c) in single
        .outcomes()
        .iter()
        .zip(again.outcomes())
        .zip(dual.outcomes())
    {
        // Bit-level equality, not approximate: the protocol derives every
        // RNG stream from (seed, replication, strategy), never from the
        // worker that happens to run it.
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
        assert_eq!(a.improvement.to_bits(), c.improvement.to_bits());
        assert_eq!(a.distortion.to_bits(), c.distortion.to_bits());
        assert_eq!(a.strategy_index, c.strategy_index);
        assert_eq!(a.replication, c.replication);
        assert_eq!(a.cleaning, c.cleaning);
    }
}

#[test]
fn log_factor_changes_outlier_detection_only() {
    // Table 1's missing/inconsistent columns are identical with and
    // without the log factor: those two detectors run on raw values. The
    // invariant is at the detector level — on the *same* series the flags
    // for missing and inconsistent are transform-independent, while the
    // outlier flags may differ.
    let data = generate(&NetsimConfig::small(53)).dataset;
    let constraints = ConstraintSet::paper_rules(0, 2);
    let log_tf = vec![
        AttributeTransform::log(),
        AttributeTransform::Identity,
        AttributeTransform::Identity,
    ];
    let raw_tf = vec![AttributeTransform::Identity; 3];
    let partition = partition_ideal(&data, &constraints, &log_tf, 3.0, 0.05).unwrap();
    let ideal = partition.ideal_dataset(&data);
    let with_log = GlitchDetector::new(
        constraints.clone(),
        Some(OutlierDetector::fit(&ideal, &log_tf, 3.0)),
    );
    let without = GlitchDetector::new(
        constraints,
        Some(OutlierDetector::fit(&ideal, &raw_tf, 3.0)),
    );
    let mut outlier_flags_differ = false;
    for series in data.series().iter().take(30) {
        let a = with_log.detect_series(series);
        let b = without.detect_series(series);
        for t in 0..series.len() {
            for attr in 0..3 {
                assert_eq!(
                    a.get(attr, GlitchType::Missing, t),
                    b.get(attr, GlitchType::Missing, t)
                );
                assert_eq!(
                    a.get(attr, GlitchType::Inconsistent, t),
                    b.get(attr, GlitchType::Inconsistent, t)
                );
                if a.get(attr, GlitchType::Outlier, t) != b.get(attr, GlitchType::Outlier, t) {
                    outlier_flags_differ = true;
                }
            }
        }
    }
    assert!(
        outlier_flags_differ,
        "the log factor must change at least some outlier decisions"
    );
}

#[test]
fn cost_sweep_monotone_in_fraction() {
    let (data, mut config) = small_experiment(true, 67);
    config.replications = 2;
    let sweep = CostSweepConfig {
        experiment: config,
        fractions: vec![0.0, 0.5, 1.0],
        strategies: vec![paper_strategy(5)],
        transport: TransportMode::Cold,
    };
    let points = cost_sweep(&data, &sweep).unwrap();
    // The engine sweep must match the preserved replication-granular
    // reference bit for bit (same seeds, same selections, same scores).
    let reference = cost_sweep_reference(&data, &sweep).unwrap();
    assert_eq!(points.len(), reference.len());
    for (a, b) in points.iter().zip(&reference) {
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
        assert_eq!(a.series_cleaned, b.series_cleaned);
    }
    for rep in 0..2 {
        let at = |f: f64| {
            points
                .iter()
                .find(|p| p.replication == rep && p.fraction == f)
                .unwrap()
        };
        assert_eq!(at(0.0).improvement, 0.0);
        assert!(at(1.0).improvement >= at(0.5).improvement);
        assert!(at(0.5).improvement > 0.0);
        assert!(at(1.0).series_cleaned == 15);
    }
}

#[test]
fn ideal_partition_respects_threshold() {
    let data = generate(&NetsimConfig::small(71)).dataset;
    let constraints = ConstraintSet::paper_rules(0, 2);
    let transforms = vec![
        AttributeTransform::log(),
        AttributeTransform::Identity,
        AttributeTransform::Identity,
    ];
    let partition = partition_ideal(&data, &constraints, &transforms, 3.0, 0.05).unwrap();
    assert!(!partition.ideal_indices.is_empty());
    assert!(!partition.dirty_indices.is_empty());
    assert_eq!(
        partition.ideal_indices.len() + partition.dirty_indices.len(),
        data.num_series()
    );
    // Re-verify the rule on the ideal partition.
    let ideal = partition.ideal_dataset(&data);
    let detector = GlitchDetector::new(
        constraints,
        Some(OutlierDetector::fit(&ideal, &transforms, 3.0)),
    );
    for idx in &partition.ideal_indices {
        let m = detector.detect_series(data.series_at(*idx));
        for g in [GlitchType::Missing, GlitchType::Inconsistent] {
            let rate = m.count_records(g) as f64 / m.len() as f64;
            assert!(rate < 0.05, "series {idx} breaks the ideal rule for {g}");
        }
    }
}

#[test]
fn budget_tradeoff_matches_figure2_narrative() {
    let points = budget_tradeoff(3000, 0.25, 5).unwrap();
    assert_eq!(points.len(), 3);
    assert!(points[0].glitch_improvement_pct > points[1].glitch_improvement_pct);
    assert!(points[1].glitch_improvement_pct > points[2].glitch_improvement_pct);
}

#[test]
fn windowed_experiment_emits_per_window_trajectories() {
    // The §3.3 online formulation end to end: slide a window over the
    // stream, calibrate per-window artifacts off the WindowedOutlierDetector
    // screen, clean with each strategy, and emit (improvement, distortion)
    // trajectories.
    let data = generate(&NetsimConfig::small(83)).dataset;
    let mut config = WindowedConfig::paper_default(20, 10, 83);
    config.threads = 2;
    let experiment = WindowedExperiment::new(config);
    let strategies: Vec<_> = (1..=5).map(paper_strategy).collect();
    let result = experiment.run(&data, &strategies).unwrap();

    assert_eq!(result.num_windows(), 5); // 60-step stream, window 20 stride 10
    assert_eq!(result.outcomes().len(), 5 * 5);
    for o in result.outcomes() {
        assert!(o.improvement.is_finite());
        assert!(o.distortion.is_finite() && o.distortion >= 0.0, "{o:?}");
        assert_eq!(o.end, o.start + 20);
    }
    for si in 0..5 {
        let trajectory = result.trajectory(si);
        assert_eq!(trajectory.len(), 5, "one point per window");
        assert!(
            trajectory.windows(2).all(|w| w[0].0 < w[1].0),
            "trajectory is in stream order"
        );
    }
    // Deep cleaning (strategy 1/5) must actually rewrite cells somewhere in
    // the stream and register positive improvement in at least one window.
    let deep: Vec<_> = result
        .outcomes()
        .iter()
        .filter(|o| o.strategy_index == 0 || o.strategy_index == 4)
        .collect();
    assert!(deep.iter().any(|o| o.cleaning.cells_changed() > 0));
    assert!(deep.iter().any(|o| o.improvement > 0.0));
    // The no-op-ish comparison: the windowed mode is deterministic.
    let again = experiment.run(&data, &strategies).unwrap();
    for (a, b) in result.outcomes().iter().zip(again.outcomes()) {
        assert_eq!(a.improvement.to_bits(), b.improvement.to_bits());
        assert_eq!(a.distortion.to_bits(), b.distortion.to_bits());
    }
}
