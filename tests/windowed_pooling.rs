//! Topology neighbour pooling regressions: the §3.3 screen with pooled
//! neighbour history must stay deterministic across thread counts, and
//! own-only pooling — however it is spelled — must reproduce the
//! pre-topology windowed output bit for bit.

use proptest::prelude::*;
use statistical_distortion::core::{
    NeighborPooling, SerialExecutor, ThreadPoolExecutor, WindowedConfig, WindowedExperiment,
    WindowedResult,
};
use statistical_distortion::prelude::*;

fn small_stream(seed: u64) -> (Dataset, Topology) {
    let config = NetsimConfig::small(seed);
    (generate(&config).dataset, config.topology)
}

fn assert_bit_identical(a: &WindowedResult, b: &WindowedResult, label: &str) {
    assert_eq!(a.outcomes().len(), b.outcomes().len(), "{label}: shape");
    assert_eq!(a.screens(), b.screens(), "{label}: screens");
    for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(
            x.improvement.to_bits(),
            y.improvement.to_bits(),
            "{label}: improvement, window {} strategy {}",
            x.window_index,
            x.strategy_index
        );
        assert_eq!(
            x.distortion.to_bits(),
            y.distortion.to_bits(),
            "{label}: distortion, window {} strategy {}",
            x.window_index,
            x.strategy_index
        );
        assert_eq!(x.cleaning, y.cleaning, "{label}: cleaning counters");
    }
}

/// One seed → bit-identical trajectories at `threads = 1` vs `2`, for
/// every pooling policy (including the per-node screen trajectories).
#[test]
fn pooling_policies_are_deterministic_across_thread_counts() {
    let (data, topology) = small_stream(23);
    let strategies = [paper_strategy(1), paper_strategy(5)];
    for pooling in [
        NeighborPooling::OwnOnly,
        NeighborPooling::KHop { hops: 1 },
        NeighborPooling::KHop { hops: 2 },
        NeighborPooling::Weighted {
            tower: 1.0,
            rnc: 0.3,
        },
    ] {
        let mut config = WindowedConfig::paper_default(20, 10, 23);
        config = config.with_topology(topology, pooling);
        let experiment = WindowedExperiment::new(config);
        let one = experiment
            .run_with(&data, &strategies, &ThreadPoolExecutor::new(1))
            .unwrap();
        let two = experiment
            .run_with(&data, &strategies, &ThreadPoolExecutor::new(2))
            .unwrap();
        let serial = experiment
            .run_with(&data, &strategies, &SerialExecutor)
            .unwrap();
        assert_bit_identical(&one, &two, &format!("{pooling:?} threads 1 vs 2"));
        assert_bit_identical(&one, &serial, &format!("{pooling:?} threads 1 vs serial"));
        for i in [0, data.num_series() / 2, data.num_series() - 1] {
            assert_eq!(one.node_trajectory(i), two.node_trajectory(i));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Own-only pooling reproduces the pre-topology `WindowedExperiment`
    /// output exactly, whether spelled as the legacy config (no
    /// topology), as `OwnOnly` with a topology attached, or as a `KHop`
    /// neighbourhood of radius zero (the pooling machinery with empty
    /// neighbour views).
    #[test]
    fn own_only_pooling_reproduces_legacy_output(
        seed in 0u64..1_000,
        window in 15usize..30,
        stride in 8usize..15,
    ) {
        let (data, topology) = small_stream(seed);
        let strategies = [paper_strategy(5)];
        let legacy_config = WindowedConfig::paper_default(window, stride, seed);
        let legacy = WindowedExperiment::new(legacy_config.clone())
            .run(&data, &strategies)
            .unwrap();
        for pooling in [NeighborPooling::OwnOnly, NeighborPooling::KHop { hops: 0 }] {
            let config = legacy_config.clone().with_topology(topology, pooling);
            let run = WindowedExperiment::new(config).run(&data, &strategies).unwrap();
            prop_assert_eq!(legacy.outcomes().len(), run.outcomes().len());
            for (x, y) in legacy.outcomes().iter().zip(run.outcomes()) {
                prop_assert_eq!(x.improvement.to_bits(), y.improvement.to_bits());
                prop_assert_eq!(x.distortion.to_bits(), y.distortion.to_bits());
                prop_assert_eq!(&x.cleaning, &y.cleaning);
                prop_assert_eq!(&x.dirty_report, &y.dirty_report);
                prop_assert_eq!(&x.treated_report, &y.treated_report);
            }
            prop_assert_eq!(legacy.screens(), run.screens());
        }
    }
}
