//! The streaming service's contract: feeding the same rows through
//! `sd-serve` produces per-window outcomes **bit-identical** to the
//! batch `WindowedExperiment` replay — for every pooling policy, every
//! metric set, every shard count, and ragged stream horizons. Both
//! paths share one implementation (`NodeState` rings feeding
//! `calibrate_window` / `evaluate_window_artifacts`), and these tests
//! are the proof that the sharded, channel-driven arrangement of that
//! implementation changes nothing.

use statistical_distortion::core::{
    DistortionMetric, NeighborPooling, WindowOutcome, WindowedConfig, WindowedExperiment,
    WindowedResult,
};
use statistical_distortion::prelude::*;
use statistical_distortion::serve::shard_of;

fn small_stream(seed: u64) -> (Dataset, Topology) {
    let config = NetsimConfig::small(seed);
    (generate(&config).dataset, config.topology)
}

fn nodes_of(data: &Dataset) -> Vec<NodeId> {
    data.series().iter().map(|s| s.node()).collect()
}

fn attributes_of(data: &Dataset) -> Vec<String> {
    data.attributes().iter().map(|a| a.name.clone()).collect()
}

fn serve_stream(
    data: &Dataset,
    config: &WindowedConfig,
    strategies: &[CompositeStrategy],
    shards: usize,
) -> StreamReport {
    let serve = ServeConfig::new(config.clone(), attributes_of(data)).with_shards(shards);
    serve_configured(data, serve, strategies)
}

fn serve_configured(
    data: &Dataset,
    serve: ServeConfig,
    strategies: &[CompositeStrategy],
) -> StreamReport {
    let service = StreamingService::launch(serve, nodes_of(data), strategies.to_vec()).unwrap();
    for row in stream_rows(data) {
        service.ingest(row).unwrap();
    }
    service.finish().unwrap()
}

fn assert_outcomes_bit_identical(batch: &[WindowOutcome], stream: &[WindowOutcome], label: &str) {
    assert_eq!(batch.len(), stream.len(), "{label}: outcome count");
    for (x, y) in batch.iter().zip(stream) {
        let at = format!(
            "{label}: window {} strategy {}",
            x.window_index, x.strategy_index
        );
        assert_eq!(x.window_index, y.window_index, "{at}: window index");
        assert_eq!(x.strategy_index, y.strategy_index, "{at}: strategy index");
        assert_eq!((x.start, x.end), (y.start, y.end), "{at}: bounds");
        assert_eq!(x.strategy, y.strategy, "{at}: name");
        assert_eq!(
            x.improvement.to_bits(),
            y.improvement.to_bits(),
            "{at}: improvement"
        );
        assert_eq!(
            x.distortion.to_bits(),
            y.distortion.to_bits(),
            "{at}: distortion"
        );
        assert_eq!(x.distortions.len(), y.distortions.len(), "{at}: metrics");
        for (dx, dy) in x.distortions.iter().zip(&y.distortions) {
            assert_eq!(dx.metric, dy.metric, "{at}: metric order");
            assert_eq!(
                dx.value.to_bits(),
                dy.value.to_bits(),
                "{at}: {} value",
                dx.metric
            );
        }
        assert_eq!(x.cleaning, y.cleaning, "{at}: cleaning counters");
        assert_eq!(x.dirty_report, y.dirty_report, "{at}: dirty report");
        assert_eq!(x.treated_report, y.treated_report, "{at}: treated report");
    }
}

fn assert_equivalent(batch: &WindowedResult, stream: &StreamReport, label: &str) {
    assert_eq!(batch.screens(), stream.screens(), "{label}: screens");
    assert_outcomes_bit_identical(batch.outcomes(), stream.outcomes(), label);
}

/// Every pooling policy: one seeded stream through sd-serve equals the
/// batch replay bit for bit — screens (per-node flag trajectories)
/// included.
#[test]
fn streaming_matches_batch_for_every_pooling_policy() {
    let (data, topology) = small_stream(31);
    let strategies = [paper_strategy(1), paper_strategy(5)];
    for pooling in [
        NeighborPooling::OwnOnly,
        NeighborPooling::KHop { hops: 1 },
        NeighborPooling::KHop { hops: 2 },
        NeighborPooling::Weighted {
            tower: 1.0,
            rnc: 0.3,
        },
    ] {
        let config = WindowedConfig::paper_default(20, 10, 31).with_topology(topology, pooling);
        let batch = WindowedExperiment::new(config.clone())
            .run(&data, &strategies)
            .unwrap();
        let stream = serve_stream(&data, &config, &strategies, 4);
        assert_equivalent(&batch, &stream, &format!("{pooling:?}"));
    }
}

/// Every shard count the issue names (1, 2, 4, 8) and a multi-kernel
/// metric set: same outcomes, including the secondary metric values.
#[test]
fn streaming_matches_batch_across_shard_counts_and_metric_sets() {
    let (data, _) = small_stream(47);
    let strategies = [paper_strategy(2), paper_strategy(4)];
    let metric_sets: [Vec<DistortionMetric>; 2] = [
        vec![DistortionMetric::paper_default()],
        vec![
            DistortionMetric::paper_default(),
            DistortionMetric::KolmogorovSmirnov,
            DistortionMetric::Mahalanobis,
            DistortionMetric::Energy { bins: 8 },
        ],
    ];
    for metrics in metric_sets {
        let mut config = WindowedConfig::paper_default(20, 20, 47);
        config.metrics = metrics;
        let batch = WindowedExperiment::new(config.clone())
            .run(&data, &strategies)
            .unwrap();
        for shards in [1, 2, 4, 8] {
            let stream = serve_stream(&data, &config, &strategies, shards);
            assert_equivalent(
                &batch,
                &stream,
                &format!("{} metrics, {shards} shards", config.metrics.len()),
            );
            assert_eq!(stream.stats().shards, shards);
            assert_eq!(stream.stats().rows_ingested as usize, data.num_records());
        }
    }
}

/// The pipelined-collector contract: every evaluator-pool size, crossed
/// with every shard count the issue names, produces the same
/// `StreamReport` bit for bit — and the same bits as the batch replay.
/// Deterministic per-window jitter scrambles completion order inside the
/// pool, so the reorder stage (not scheduling luck) is what the test
/// exercises.
#[test]
fn streaming_matches_batch_across_evaluator_pools_and_shards() {
    let (data, _) = small_stream(101);
    let strategies = [paper_strategy(1), paper_strategy(4)];
    let config = WindowedConfig::paper_default(20, 15, 101);
    let batch = WindowedExperiment::new(config.clone())
        .run(&data, &strategies)
        .unwrap();
    for evaluators in [1, 2, 4] {
        for shards in [1, 2, 4, 8] {
            let serve = ServeConfig::new(config.clone(), attributes_of(&data))
                .with_shards(shards)
                .with_evaluators(evaluators)
                .with_evaluation_jitter(0xC0FFEE ^ (evaluators * 16 + shards) as u64, 400);
            let stream = serve_configured(&data, serve, &strategies);
            let label = format!("{evaluators} evaluators, {shards} shards");
            assert_equivalent(&batch, &stream, &label);
            let stats = stream.stats();
            assert_eq!(stats.evaluators, evaluators, "{label}");
            assert_eq!(stats.shards, shards, "{label}");
            assert_eq!(stats.window_lags.len(), stats.windows_evaluated, "{label}");
            // Lags publish in window order, and the pipeline depth stays
            // within its structural bound.
            for (i, lag) in stats.window_lags.iter().enumerate() {
                assert_eq!(lag.window_index, i, "{label}");
            }
            assert!(
                stats.max_pending_windows <= 2 * evaluators + 1,
                "{label}: depth {}",
                stats.max_pending_windows
            );
        }
    }
}

/// Ragged streams: series end at different horizons, so the tail
/// windows are clipped for some nodes and empty for others — the
/// streaming close-flush must settle them exactly as the batch slices
/// do.
#[test]
fn streaming_matches_batch_on_ragged_horizons() {
    let (data, _) = small_stream(59);
    let series = data
        .series()
        .iter()
        .enumerate()
        .map(|(i, s)| s.slice(0, s.len() - (i % 4) * 9))
        .collect();
    let ragged = Dataset::new(
        data.attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect::<Vec<_>>(),
        series,
    )
    .unwrap();
    let strategies = [paper_strategy(5)];
    let config = WindowedConfig::paper_default(20, 10, 59);
    let batch = WindowedExperiment::new(config.clone())
        .run(&ragged, &strategies)
        .unwrap();
    for shards in [1, 3, 8] {
        let stream = serve_stream(&ragged, &config, &strategies, shards);
        assert_equivalent(&batch, &stream, &format!("ragged, {shards} shards"));
    }
}

/// The live update feed tells the same story as the final report: one
/// update per window, in stream order, with the same outcomes.
#[test]
fn live_updates_replay_the_final_report() {
    let (data, _) = small_stream(71);
    let strategies = vec![paper_strategy(3)];
    let config = WindowedConfig::paper_default(20, 10, 71);
    let serve = ServeConfig::new(config, attributes_of(&data)).with_shards(2);
    let service = StreamingService::launch(serve, nodes_of(&data), strategies).unwrap();
    for row in stream_rows(&data) {
        service.ingest(row).unwrap();
    }
    let mut updates = Vec::new();
    // All rows are in flight, so every full window eventually completes;
    // the clipped tail (windows 4 with end > 60) settles only at finish.
    for expected in 0..4 {
        let update = service.next_window().unwrap();
        assert_eq!(update.window_index, expected);
        updates.push(update);
    }
    let report = service.finish().unwrap();
    assert_eq!(report.num_windows(), 5);
    for update in &updates {
        assert_eq!(&report.screens()[update.window_index], &update.screen);
        assert_outcomes_bit_identical(
            &report.outcomes()[update.window_index..update.window_index + 1],
            &update.outcomes[..1],
            "live update",
        );
    }
}

/// Sharding is a pure function of the node address, so a node's rows
/// always meet the same ring regardless of service instance.
#[test]
fn shard_routing_is_stable_across_launches() {
    let (data, _) = small_stream(5);
    for node in nodes_of(&data) {
        for shards in [1, 2, 4, 8] {
            assert_eq!(shard_of(node, shards), shard_of(node, shards));
            assert!(shard_of(node, shards) < shards);
        }
    }
}
